//! Multilevel (clustered) partitioning: coarsen → partition → project →
//! refine.
//!
//! Clustering is one of the classical FM quality/runtime levers the
//! paper's introduction surveys. This module composes the substrates:
//! [`fpart_hypergraph::coarsen`] shrinks the circuit by heavy-edge
//! matching, the FPART driver partitions the coarse circuit, the
//! solution is projected back, and pairwise improvement passes refine it
//! on the original netlist.

use fpart_device::DeviceConstraints;
use fpart_hypergraph::coarsen::coarsen_by_connectivity;
use fpart_hypergraph::Hypergraph;

use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::driver::{partition, PartitionError, PartitionOutcome};
use crate::refine::{refine_pairs, RefineConfig};
use crate::state::PartitionState;
use crate::trace::Trace;

/// Options of the multilevel mode.
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelConfig {
    /// Coarsening levels (each level roughly halves the node count).
    pub levels: usize,
    /// Cluster size cap as a fraction of `S_MAX` (clusters larger than
    /// the device could never be placed; smaller caps keep refinement
    /// room). Clamped to at least 2 cells.
    pub cluster_cap_fraction: f64,
    /// Maximum pairwise refinement rounds per level.
    pub refine_rounds: usize,
    /// Block pairs refined per round (the most cut-connected ones).
    pub pairs_per_round: usize,
    /// Seed for the matching order.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            levels: 2,
            cluster_cap_fraction: 0.1,
            refine_rounds: 4,
            pairs_per_round: 8,
            seed: 0x5EED,
        }
    }
}

/// Partitions `graph` through a multilevel flow: coarsen
/// `ml.levels` times, run FPART on the coarsest hypergraph, project the
/// solution back level by level, and refine with pairwise improvement
/// passes at every level.
///
/// # Errors
///
/// Propagates [`PartitionError`] from the coarse-level FPART run; an
/// oversized *cluster* cannot occur (the cap keeps clusters below
/// `S_MAX`), but an oversized original node still errors.
///
/// # Example
///
/// ```
/// use fpart_core::{partition_multilevel, FpartConfig, MultilevelConfig};
/// use fpart_device::Device;
/// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let circuit = window_circuit(&WindowConfig::new("demo", 300, 24), 1);
/// let outcome = partition_multilevel(
///     &circuit,
///     Device::XC3020.constraints(0.9),
///     &FpartConfig::default(),
///     &MultilevelConfig::default(),
/// )?;
/// assert!(outcome.feasible);
/// # Ok(())
/// # }
/// ```
pub fn partition_multilevel(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
) -> Result<PartitionOutcome, PartitionError> {
    config.validate();
    for v in graph.node_ids() {
        let size = graph.node_size(v);
        if u64::from(size) > constraints.s_max {
            return Err(PartitionError::OversizedNode { node: v, size, s_max: constraints.s_max });
        }
    }
    let started = std::time::Instant::now();
    let cap = ((constraints.s_max as f64 * ml.cluster_cap_fraction) as u64).max(2);

    // Coarsen.
    let mut levels = Vec::new();
    let mut current = graph.clone();
    for level in 0..ml.levels {
        if current.node_count() < 32 {
            break;
        }
        let coarsening = coarsen_by_connectivity(&current, cap, ml.seed ^ level as u64);
        if coarsening.ratio() < 1.05 {
            break; // matching saturated; further levels are pointless
        }
        let next = coarsening.coarse.clone();
        levels.push(coarsening);
        current = next;
    }

    // Partition the coarsest level.
    let coarse_outcome = partition(&current, constraints, config)?;
    let mut assignment = coarse_outcome.assignment;
    let mut k = coarse_outcome.device_count;

    // Project back and refine at every level. The fine side of level i
    // is the coarse side of level i−1 (level 0's fine side is the input).
    let m = fpart_device::lower_bound(graph, constraints);
    let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());
    for i in (0..levels.len()).rev() {
        assignment = levels[i].project(&assignment);
        let fine: &Hypergraph = if i == 0 { graph } else { &levels[i - 1].coarse };
        let mut state = PartitionState::from_assignment(fine, assignment, k.max(1));
        let refine = RefineConfig { rounds: ml.refine_rounds, pairs_per_round: ml.pairs_per_round };
        refine_pairs(&mut state, &evaluator, config, &refine);
        assignment = state.assignment().to_vec();
        k = state.block_count();
    }

    // Assemble the final outcome on the original graph.
    let state = PartitionState::from_assignment(graph, assignment, k.max(1));
    let outcome = crate::driver::assemble_outcome(
        graph,
        &state,
        constraints,
        m,
        coarse_outcome.iterations,
        coarse_outcome.improve_calls,
        coarse_outcome.total_moves,
        started.elapsed(),
        Trace::disabled(),
        crate::obs::Metrics::disabled(),
        coarse_outcome.completion,
    );
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::Device;
    use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    #[test]
    fn multilevel_produces_valid_feasible_partition() {
        let g = window_circuit(&WindowConfig::new("w", 400, 30), 3);
        let constraints = Device::XC3020.constraints(0.9);
        let out = partition_multilevel(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .expect("runs");
        assert_eq!(out.assignment.len(), g.node_count());
        let total: u64 = out.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total, g.total_size());
        assert!(out.feasible, "blocks: {:?}", out.blocks);
        assert!(out.device_count >= out.lower_bound);
    }

    #[test]
    fn multilevel_quality_is_comparable_to_flat_on_mcnc() {
        let p = find_profile("s9234").expect("known circuit");
        let g = synthesize_mcnc(p, Technology::Xc3000);
        let constraints = Device::XC3020.constraints(0.9);
        let flat = partition(&g, constraints, &FpartConfig::default()).expect("flat");
        let ml = partition_multilevel(
            &g,
            constraints,
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .expect("multilevel");
        assert!(ml.feasible);
        // Clustering may trade a little quality for speed; hold it to a
        // generous band so regressions stand out.
        assert!(
            ml.device_count <= flat.device_count + flat.device_count / 2 + 1,
            "multilevel {} vs flat {}",
            ml.device_count,
            flat.device_count
        );
    }

    #[test]
    fn zero_levels_degenerates_to_flat() {
        let g = window_circuit(&WindowConfig::new("w", 150, 16), 7);
        let constraints = Device::XC3020.constraints(0.9);
        let ml_config = MultilevelConfig { levels: 0, ..MultilevelConfig::default() };
        let out = partition_multilevel(&g, constraints, &FpartConfig::default(), &ml_config)
            .expect("runs");
        let flat = partition(&g, constraints, &FpartConfig::default()).expect("flat");
        assert_eq!(out.device_count, flat.device_count);
    }

    #[test]
    fn oversized_node_still_errors() {
        let mut b = fpart_hypergraph::HypergraphBuilder::new();
        let x = b.add_node("x", 100);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let err = partition_multilevel(
            &g,
            DeviceConstraints::new(50, 10),
            &FpartConfig::default(),
            &MultilevelConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::OversizedNode { .. }));
    }
}
