//! Crash-safe checkpoint / resume for the restart search.
//!
//! The durable unit is a **completed restart**: the search's reduction
//! picks the winner from per-restart outcomes in restart-index order, so
//! a checkpoint holding any subset of completed restarts lets a resumed
//! run re-execute only the missing indices (each fully determined by
//! `restart_config(config, i)`) and merge saved + fresh outcomes into a
//! result **bit-identical** to an uninterrupted run.
//!
//! Three guarantees:
//!
//! * **Atomicity** — checkpoints go through [`crate::persist::write_atomic`];
//!   a SIGKILL mid-write leaves the previous checkpoint intact.
//! * **Non-blocking hot loop** — [`CheckpointWriter`] serializes and
//!   writes on a dedicated thread; workers only clone their outcome and
//!   send it over a channel at restart boundaries.
//! * **Identity** — every checkpoint embeds a [`fingerprint_run`] digest
//!   (built on the zobrist-style [`fpart_hypergraph::fingerprint`]
//!   module, the one hash implementation in the tree) of the graph,
//!   device constraints, search configuration, and restart count;
//!   resuming against a different run is a typed error, never a
//!   silently wrong merge.
//!
//! Only [`Completion::Complete`] and [`Completion::Degraded`] restarts
//! are persisted: cancelled or deadline-expired restarts depend on
//! wall-clock timing and would break bit-identity if replayed from disk.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fpart_device::DeviceConstraints;
use fpart_hypergraph::{fingerprint_graph, order_checksum, Hypergraph};

use crate::budget::{Completion, RunBudget};
use crate::config::FpartConfig;
use crate::driver::{
    observed_restart_job, reduce_outcomes, validate_search, BlockReport, FailedRestart,
    PartitionError, PartitionOutcome, RestartsReport,
};
use crate::multilevel::{observed_multilevel_restart_job, split_thread_budget, MultilevelConfig};
use crate::obs::{Counter, Metrics, SCHEMA_VERSION};
use crate::persist::write_atomic;
use crate::trace::Trace;

/// One completed restart, as persisted in a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedRestart {
    /// Restart index within the search.
    pub restart: usize,
    /// Final block index per node (dense).
    pub assignment: Vec<u32>,
    /// Per-block reports, indexed by block.
    pub blocks: Vec<BlockReport>,
    /// Number of devices used.
    pub device_count: usize,
    /// Theoretical lower bound `M`.
    pub lower_bound: usize,
    /// Whether every block meets the constraints.
    pub feasible: bool,
    /// Nets spanning more than one block.
    pub cut: usize,
    /// Peeling iterations executed.
    pub iterations: usize,
    /// `Improve(...)` calls executed.
    pub improve_calls: usize,
    /// Total cell moves retained.
    pub total_moves: usize,
    /// How the restart ended (only `complete` / `degraded` are saved).
    pub completion: Completion,
    /// Counter snapshot in [`Counter::ALL`] order (empty when the
    /// restart ran unobserved). Span and timing stats are not persisted;
    /// a resumed restart's registry carries counters only.
    pub counters: Vec<u64>,
}

impl SavedRestart {
    /// Captures a finished restart's outcome and counter snapshot.
    #[must_use]
    pub fn from_outcome(restart: usize, outcome: &PartitionOutcome, metrics: &Metrics) -> Self {
        SavedRestart {
            restart,
            assignment: outcome.assignment.clone(),
            blocks: outcome.blocks.clone(),
            device_count: outcome.device_count,
            lower_bound: outcome.lower_bound,
            feasible: outcome.feasible,
            cut: outcome.cut,
            iterations: outcome.iterations,
            improve_calls: outcome.improve_calls,
            total_moves: outcome.total_moves,
            completion: outcome.completion,
            counters: Counter::ALL.iter().map(|&c| metrics.get(c)).collect(),
        }
    }

    /// Rebuilds the restart's metrics registry from the saved counters
    /// and marks it as restored ([`Counter::RestartsResumed`]).
    #[must_use]
    pub fn rebuild_metrics(&self) -> Metrics {
        let mut metrics = Metrics::enabled();
        for (&counter, &value) in Counter::ALL.iter().zip(&self.counters) {
            metrics.add(counter, value);
        }
        metrics.bump(Counter::RestartsResumed);
        metrics
    }

    /// Reconstructs the outcome this restart produced. Wall-clock
    /// elapsed time is not replayed (it reports zero) and the trace is
    /// empty; everything the search reduction reads is bit-exact.
    #[must_use]
    pub fn to_outcome(&self, metrics: Metrics) -> PartitionOutcome {
        PartitionOutcome {
            assignment: self.assignment.clone(),
            blocks: self.blocks.clone(),
            device_count: self.device_count,
            lower_bound: self.lower_bound,
            feasible: self.feasible,
            cut: self.cut,
            iterations: self.iterations,
            improve_calls: self.improve_calls,
            total_moves: self.total_moves,
            elapsed: Duration::ZERO,
            trace: Trace::disabled(),
            metrics,
            completion: self.completion,
        }
    }
}

/// A versioned snapshot of a restart search in progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Metrics schema version ([`SCHEMA_VERSION`]) the file was written
    /// under; a mismatch is rejected at parse time.
    pub schema_version: u32,
    /// [`fingerprint_run`] digest of the run this snapshot belongs to.
    pub fingerprint: u64,
    /// Total restarts of the search (completed + pending).
    pub restarts: usize,
    /// Completed restarts, in restart-index order.
    pub completed: Vec<SavedRestart>,
}

impl Checkpoint {
    /// Verifies the snapshot belongs to the run with `fingerprint`.
    ///
    /// # Errors
    ///
    /// [`ReadCheckpointError::FingerprintMismatch`] when it does not.
    pub fn verify(&self, fingerprint: u64) -> Result<(), ReadCheckpointError> {
        if self.fingerprint == fingerprint {
            Ok(())
        } else {
            Err(ReadCheckpointError::FingerprintMismatch {
                found: self.fingerprint,
                expected: fingerprint,
            })
        }
    }

    /// Serializes the snapshot to the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "#%fpart-checkpoint v{}", self.schema_version);
        let _ = writeln!(out, "fingerprint {}", self.fingerprint);
        let _ = writeln!(out, "restarts {}", self.restarts);
        let _ = writeln!(out, "completed {}", self.completed.len());
        for saved in &self.completed {
            let _ = writeln!(out, "restart {} {}", saved.restart, saved.completion.as_str());
            let _ = writeln!(
                out,
                "stats {} {} {} {} {} {} {}",
                saved.device_count,
                saved.lower_bound,
                u8::from(saved.feasible),
                saved.cut,
                saved.iterations,
                saved.improve_calls,
                saved.total_moves,
            );
            let _ = writeln!(out, "blocks {}", saved.blocks.len());
            for b in &saved.blocks {
                let _ = writeln!(
                    out,
                    "block {} {} {} {}",
                    b.size,
                    b.terminals,
                    b.externals,
                    u8::from(b.feasible)
                );
            }
            let _ = write!(out, "assignment {}", saved.assignment.len());
            for &a in &saved.assignment {
                let _ = write!(out, " {a}");
            }
            out.push('\n');
            let _ = write!(out, "counters {}", saved.counters.len());
            for &c in &saved.counters {
                let _ = write!(out, " {c}");
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the versioned text format.
    ///
    /// # Errors
    ///
    /// [`ReadCheckpointError::SchemaVersionMismatch`] for a checkpoint
    /// from another schema generation, [`ReadCheckpointError::Malformed`]
    /// (with the offending line) for anything truncated or corrupted.
    pub fn parse(text: &str) -> Result<Checkpoint, ReadCheckpointError> {
        let mut lines = CursorLines::new(text);
        let (line_no, header) = lines.next_line("`#%fpart-checkpoint v<N>` header")?;
        let version = header
            .strip_prefix("#%fpart-checkpoint v")
            .and_then(|v| v.trim().parse::<u32>().ok())
            .ok_or_else(|| malformed(line_no, "`#%fpart-checkpoint v<N>` header", header))?;
        if version != SCHEMA_VERSION {
            return Err(ReadCheckpointError::SchemaVersionMismatch {
                found: version,
                expected: SCHEMA_VERSION,
            });
        }
        let fingerprint = lines.keyword_value("fingerprint")?;
        let restarts = lines.keyword_value::<usize>("restarts")?;
        let completed_count = lines.keyword_value::<usize>("completed")?;
        let mut completed = Vec::with_capacity(completed_count.min(restarts));
        for _ in 0..completed_count {
            completed.push(parse_restart(&mut lines)?);
        }
        let (line_no, sentinel) = lines.next_line("`end` sentinel")?;
        if sentinel != "end" {
            return Err(malformed(line_no, "`end` sentinel", sentinel));
        }
        Ok(Checkpoint { schema_version: version, fingerprint, restarts, completed })
    }
}

fn parse_restart(lines: &mut CursorLines<'_>) -> Result<SavedRestart, ReadCheckpointError> {
    const STATS: &str = "`stats <devices> <lower> <feasible> <cut> <iters> <improves> <moves>`";
    const ASSIGNMENT: &str = "`assignment <len> <block>...`";
    const COUNTERS: &str = "`counters <len> <value>...`";

    let (line_no, line) = lines.next_line("`restart <i> <completion>`")?;
    let mut fields = line.split_ascii_whitespace();
    let (Some("restart"), Some(restart), Some(completion), None) =
        (fields.next(), fields.next(), fields.next(), fields.next())
    else {
        return Err(malformed(line_no, "`restart <i> <completion>`", line));
    };
    let restart = parse_num(restart, line_no, "`restart <i> <completion>`", line)?;
    let completion = match completion {
        "complete" => Completion::Complete,
        "degraded" => Completion::Degraded,
        "deadline_expired" => Completion::DeadlineExpired,
        "cancelled" => Completion::Cancelled,
        _ => return Err(malformed(line_no, "a known completion name", line)),
    };

    let (line_no, line) = lines.next_line(STATS)?;
    let stats = numbers_after("stats", line, line_no, STATS)?;
    let [device_count, lower_bound, feasible, cut, iterations, improve_calls, total_moves] =
        stats[..]
    else {
        return Err(malformed(line_no, STATS, line));
    };

    let block_count = lines.keyword_value::<usize>("blocks")?;
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        const BLOCK: &str = "`block <size> <terminals> <externals> <feasible>`";
        let (line_no, line) = lines.next_line(BLOCK)?;
        let fields = numbers_after("block", line, line_no, BLOCK)?;
        let [size, terminals, externals, feasible] = fields[..] else {
            return Err(malformed(line_no, BLOCK, line));
        };
        blocks.push(BlockReport {
            size,
            terminals: terminals as usize,
            externals: externals as usize,
            feasible: feasible != 0,
        });
    }

    let (line_no, line) = lines.next_line(ASSIGNMENT)?;
    let values = numbers_after("assignment", line, line_no, ASSIGNMENT)?;
    let (Some(&len), rest) = (values.first(), &values[1.min(values.len())..]) else {
        return Err(malformed(line_no, ASSIGNMENT, line));
    };
    if rest.len() as u64 != len {
        return Err(malformed(line_no, "assignment length matching its count", line));
    }
    let assignment: Vec<u32> = rest.iter().map(|&v| v as u32).collect();

    let (line_no, line) = lines.next_line(COUNTERS)?;
    let values = numbers_after("counters", line, line_no, COUNTERS)?;
    let (Some(&len), rest) = (values.first(), &values[1.min(values.len())..]) else {
        return Err(malformed(line_no, COUNTERS, line));
    };
    if rest.len() as u64 != len {
        return Err(malformed(line_no, "counter list matching its count", line));
    }

    Ok(SavedRestart {
        restart,
        assignment,
        blocks,
        device_count: device_count as usize,
        lower_bound: lower_bound as usize,
        feasible: feasible != 0,
        cut: cut as usize,
        iterations: iterations as usize,
        improve_calls: improve_calls as usize,
        total_moves: total_moves as usize,
        completion,
        counters: rest.to_vec(),
    })
}

/// Line cursor with 1-based numbering that skips blank lines.
struct CursorLines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> CursorLines<'a> {
    fn new(text: &'a str) -> Self {
        CursorLines { iter: text.lines().enumerate() }
    }

    fn next_line(
        &mut self,
        expected: &'static str,
    ) -> Result<(usize, &'a str), ReadCheckpointError> {
        for (idx, line) in self.iter.by_ref() {
            let trimmed = line.trim();
            if !trimmed.is_empty() {
                return Ok((idx + 1, trimmed));
            }
        }
        Err(ReadCheckpointError::Malformed { line: 0, expected, found: "end of file".to_owned() })
    }

    /// Reads a `<keyword> <number>` line.
    fn keyword_value<T: std::str::FromStr>(
        &mut self,
        keyword: &'static str,
    ) -> Result<T, ReadCheckpointError> {
        let (line_no, line) = self.next_line(keyword)?;
        let mut fields = line.split_ascii_whitespace();
        if fields.next() != Some(keyword) {
            return Err(malformed(line_no, keyword, line));
        }
        let (Some(value), None) = (fields.next(), fields.next()) else {
            return Err(malformed(line_no, keyword, line));
        };
        value.parse::<T>().map_err(|_| malformed(line_no, keyword, line))
    }
}

fn malformed(line: usize, expected: &'static str, found: &str) -> ReadCheckpointError {
    let mut found = found.to_owned();
    if found.len() > 80 {
        let mut end = 80;
        while !found.is_char_boundary(end) {
            end -= 1;
        }
        found.truncate(end);
        found.push_str("...");
    }
    ReadCheckpointError::Malformed { line, expected, found }
}

fn parse_num<T: std::str::FromStr>(
    field: &str,
    line_no: usize,
    expected: &'static str,
    line: &str,
) -> Result<T, ReadCheckpointError> {
    field.parse::<T>().map_err(|_| malformed(line_no, expected, line))
}

/// Parses `<keyword> <n0> <n1> ...` into the numbers.
fn numbers_after(
    keyword: &str,
    line: &str,
    line_no: usize,
    expected: &'static str,
) -> Result<Vec<u64>, ReadCheckpointError> {
    let mut fields = line.split_ascii_whitespace();
    if fields.next() != Some(keyword) {
        return Err(malformed(line_no, expected, line));
    }
    fields.map(|f| parse_num(f, line_no, expected, line)).collect()
}

/// An error reading a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadCheckpointError {
    /// The file was written under a different metrics schema generation.
    SchemaVersionMismatch {
        /// Version in the file.
        found: u32,
        /// Version this build reads ([`SCHEMA_VERSION`]).
        expected: u32,
    },
    /// The file is truncated or corrupted at the given line.
    Malformed {
        /// 1-based line number (0 for an unexpected end of file).
        line: usize,
        /// What the parser was looking for.
        expected: &'static str,
        /// What it found (truncated for display).
        found: String,
    },
    /// The checkpoint belongs to a different run (graph, constraints,
    /// configuration, or restart count differ).
    FingerprintMismatch {
        /// Fingerprint stored in the file.
        found: u64,
        /// Fingerprint of the run attempting to resume.
        expected: u64,
    },
    /// The file could not be read at all.
    Io(String),
}

impl fmt::Display for ReadCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadCheckpointError::SchemaVersionMismatch { found, expected } => write!(
                f,
                "checkpoint schema version {found} does not match this build's version {expected}"
            ),
            ReadCheckpointError::Malformed { line, expected, found } => {
                write!(
                    f,
                    "malformed checkpoint at line {line}: expected {expected}, found `{found}`"
                )
            }
            ReadCheckpointError::FingerprintMismatch { found, expected } => write!(
                f,
                "checkpoint fingerprint {found:#018x} belongs to a different run \
                 (this run is {expected:#018x}); refusing to merge"
            ),
            ReadCheckpointError::Io(message) => write!(f, "cannot read checkpoint: {message}"),
        }
    }
}

impl Error for ReadCheckpointError {}

/// Writes `checkpoint` to `path` atomically (temp file + rename).
///
/// # Errors
///
/// Propagates I/O errors; the destination is never left torn.
pub fn write_checkpoint(path: &Path, checkpoint: &Checkpoint) -> io::Result<()> {
    write_atomic(path, checkpoint.to_text().as_bytes())
}

/// Reads and validates a checkpoint file.
///
/// # Errors
///
/// See [`Checkpoint::parse`]; unreadable files surface as
/// [`ReadCheckpointError::Io`].
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, ReadCheckpointError> {
    let text = std::fs::read_to_string(path).map_err(|e| ReadCheckpointError::Io(e.to_string()))?;
    Checkpoint::parse(&text)
}

/// Fingerprints a restart search: everything that determines its result.
///
/// Built on the zobrist-style [`fpart_hypergraph::fingerprint`] module —
/// the same hash that keys the memoization caches — chaining the
/// graph's content fingerprint and id-order checksum with the device
/// constraints and configuration (folded via their `Debug` rendering:
/// stable, value-based), after normalizing the fields a resume is
/// allowed to change: thread counts, the cancellation token, and the
/// memo-store handle (memoization never changes a result).
#[must_use]
pub fn fingerprint_run(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    multilevel: Option<&MultilevelConfig>,
    restarts: usize,
) -> u64 {
    let normalized = FpartConfig {
        budget: RunBudget { cancel: None, ..config.budget.clone() },
        ..config.clone()
    };
    let mut fp = fingerprint_graph(graph)
        .fold_u64(order_checksum(graph))
        .fold_str(&format!("{constraints:?}"))
        .fold_str(&format!("{normalized:?}"));
    fp = match multilevel {
        Some(ml) => {
            let normalized = MultilevelConfig { threads: 1, memo: None, ..ml.clone() };
            fp.fold_str("multilevel").fold_str(&format!("{normalized:?}"))
        }
        None => fp.fold_str("flat"),
    };
    fp.fold_u64(restarts as u64).to_u64()
}

/// Message sent to the writer thread: a snapshot to persist.
type WriterResult = (u64, Option<io::Error>);

/// Dedicated checkpoint writer: workers send snapshots over a channel;
/// a background thread serializes and writes them atomically, throttled
/// to at most one write per `interval` (the last snapshot received is
/// always flushed on [`CheckpointWriter::finish`], so the file on disk
/// never ends up older than the final state).
#[derive(Debug)]
pub struct CheckpointWriter {
    /// `Some` until [`CheckpointWriter::finish`]; the mutex makes the
    /// sender shareable across worker threads on older toolchains.
    tx: Option<Mutex<mpsc::Sender<Checkpoint>>>,
    handle: Option<JoinHandle<WriterResult>>,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Spawns the writer thread targeting `path`.
    #[must_use]
    pub fn spawn(path: PathBuf, interval: Duration) -> CheckpointWriter {
        let (tx, rx) = mpsc::channel::<Checkpoint>();
        let target = path.clone();
        let handle = std::thread::Builder::new()
            .name("fpart-checkpoint".to_owned())
            .spawn(move || {
                let mut writes = 0u64;
                let mut error: Option<io::Error> = None;
                let mut last_write: Option<Instant> = None;
                let mut deferred: Option<Checkpoint> = None;
                while let Ok(checkpoint) = rx.recv() {
                    let due = last_write.is_none_or(|t| t.elapsed() >= interval);
                    if due {
                        match write_atomic(&target, checkpoint.to_text().as_bytes()) {
                            Ok(()) => {
                                writes += 1;
                                last_write = Some(Instant::now());
                                deferred = None;
                            }
                            Err(e) => error = Some(e),
                        }
                    } else {
                        deferred = Some(checkpoint);
                    }
                }
                // Channel closed: flush the newest deferred snapshot so
                // the final state always reaches disk.
                if let Some(checkpoint) = deferred {
                    match write_atomic(&target, checkpoint.to_text().as_bytes()) {
                        Ok(()) => writes += 1,
                        Err(e) => error = Some(e),
                    }
                }
                (writes, error)
            })
            .expect("spawning the checkpoint writer thread");
        CheckpointWriter { tx: Some(Mutex::new(tx)), handle: Some(handle), path }
    }

    /// The checkpoint file this writer maintains.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Queues a snapshot for persistence; never blocks on I/O. Called
    /// from worker threads at restart boundaries.
    pub fn submit(&self, checkpoint: Checkpoint) {
        if let Some(tx) = &self.tx {
            let _ = tx.lock().expect("checkpoint sender lock").send(checkpoint);
        }
    }

    /// Closes the channel, joins the writer thread, and returns how many
    /// checkpoint files were written.
    ///
    /// # Errors
    ///
    /// The last write error the thread hit, if any.
    pub fn finish(mut self) -> io::Result<u64> {
        self.tx.take();
        let handle = self.handle.take().expect("finish consumes the writer");
        let (writes, error) = handle.join().expect("checkpoint writer thread never panics");
        match error {
            Some(e) => Err(e),
            None => Ok(writes),
        }
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The outcome of one freshly executed (non-resumed) restart job:
/// either the partition result plus its metrics registry, or the
/// payload of a panic caught inside that job.
type FreshResult =
    Result<(Result<PartitionOutcome, PartitionError>, Metrics), crate::parallel::JobPanic>;

/// The durable restart search: [`crate::partition_restarts_observed`] /
/// [`crate::partition_multilevel_restarts_observed`] plus checkpointing
/// and resume.
///
/// With `resume`, restarts already completed in the snapshot are
/// restored from disk (their registries carry the saved counters plus a
/// [`Counter::RestartsResumed`] mark) and only the missing indices run;
/// the merged report is **bit-identical** to an uninterrupted run at any
/// thread count. With `writer`, every completed restart submits an
/// updated snapshot covering all restarts finished so far.
///
/// # Errors
///
/// Same contract as the non-durable searches, plus
/// [`PartitionError::InvalidConfig`] when the resume snapshot's
/// fingerprint or restart count disagrees with this run (the CLI
/// pre-validates with [`Checkpoint::verify`] for a friendlier message).
#[allow(clippy::too_many_arguments)]
pub fn partition_restarts_durable(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    multilevel: Option<&MultilevelConfig>,
    restarts: usize,
    threads: usize,
    fingerprint: u64,
    resume: Option<&Checkpoint>,
    writer: Option<&CheckpointWriter>,
) -> Result<RestartsReport, PartitionError> {
    validate_search(restarts, threads)?;
    let mut resumed: BTreeMap<usize, SavedRestart> = BTreeMap::new();
    if let Some(snapshot) = resume {
        if snapshot.fingerprint != fingerprint {
            return Err(PartitionError::InvalidConfig {
                what: "resume checkpoint was recorded for a different run (fingerprint mismatch)",
            });
        }
        if snapshot.restarts != restarts {
            return Err(PartitionError::InvalidConfig {
                what: "resume checkpoint was recorded for a different restart count",
            });
        }
        for saved in &snapshot.completed {
            // Only deterministic completions are replayable; anything
            // else (and out-of-range indices) is recomputed.
            if saved.restart < restarts
                && matches!(saved.completion, Completion::Complete | Completion::Degraded)
            {
                resumed.insert(saved.restart, saved.clone());
            }
        }
    }
    let pending: Vec<usize> = (0..restarts).filter(|i| !resumed.contains_key(i)).collect();
    // The thread split uses the *total* restart count, matching the
    // uninterrupted run (the result is thread-count invariant either
    // way; this keeps the work shape identical too).
    let (outer, inner) = match multilevel {
        Some(_) => split_thread_budget(threads, restarts),
        None => (threads, 1),
    };

    let completed = Mutex::new(resumed.clone());
    let record = |saved: SavedRestart| {
        let snapshot = {
            let mut completed = completed.lock().expect("checkpoint set lock");
            completed.insert(saved.restart, saved);
            writer.map(|_| completed.values().cloned().collect::<Vec<_>>())
        };
        if let (Some(writer), Some(completed)) = (writer, snapshot) {
            writer.submit(Checkpoint {
                schema_version: SCHEMA_VERSION,
                fingerprint,
                restarts,
                completed,
            });
        }
    };

    // `pending` is empty when every restart was resumed; the single
    // dummy slot keeps the fan-out non-degenerate and is discarded.
    let gk = multilevel.and_then(|ml| crate::multilevel::run_graph_key(graph, ml));
    let results = crate::parallel::run_indexed_caught(pending.len().max(1), outer, &|j| {
        let &i = pending.get(j)?;
        let (result, metrics) = match multilevel {
            Some(ml) => observed_multilevel_restart_job(
                graph,
                constraints,
                config,
                ml,
                inner,
                i,
                gk.as_ref(),
            ),
            None => observed_restart_job(graph, constraints, config, i),
        };
        if let Ok(outcome) = &result {
            if matches!(outcome.completion, Completion::Complete | Completion::Degraded) {
                record(SavedRestart::from_outcome(i, outcome, &metrics));
            }
        }
        Some((result, metrics))
    });
    let mut fresh: BTreeMap<usize, FreshResult> = BTreeMap::new();
    for (slot, result) in results.into_iter().enumerate() {
        let Some(&i) = pending.get(slot) else { continue };
        match result {
            Ok(Some(value)) => {
                fresh.insert(i, Ok(value));
            }
            Ok(None) => {}
            Err(panic) => {
                fresh.insert(i, Err(panic));
            }
        }
    }

    // Merge saved and fresh outcomes in restart-index order — the same
    // reduction as the uninterrupted observed search.
    let mut totals = Metrics::enabled();
    let mut per_restart = Vec::with_capacity(restarts);
    let mut outcomes = Vec::with_capacity(restarts);
    let mut failed = Vec::new();
    for i in 0..restarts {
        if let Some(saved) = resumed.get(&i) {
            let metrics = saved.rebuild_metrics();
            totals.merge(&metrics);
            outcomes.push(Ok(saved.to_outcome(metrics.clone())));
            per_restart.push(metrics);
            continue;
        }
        match fresh.remove(&i).expect("every pending restart has a slot") {
            Ok((result, metrics)) => {
                totals.merge(&metrics);
                per_restart.push(metrics);
                outcomes.push(result);
            }
            Err(panic) => {
                let mut metrics = Metrics::enabled();
                metrics.bump(Counter::FailedRestarts);
                totals.merge(&metrics);
                per_restart.push(metrics);
                failed.push(FailedRestart { restart: i, message: panic.message });
            }
        }
    }
    if outcomes.is_empty() {
        let first = failed.into_iter().next().expect("at least one restart executes");
        return Err(PartitionError::RestartPanicked {
            restart: first.restart,
            message: first.message,
        });
    }
    reduce_outcomes(outcomes).map(|outcome| {
        let mut completion = outcome.completion;
        if !failed.is_empty() {
            completion = completion.worst(Completion::Degraded);
        }
        RestartsReport { outcome, totals, per_restart, completion, failed }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multilevel::partition_multilevel_restarts_observed;
    use crate::partition_restarts_observed;
    use fpart_device::Device;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            schema_version: SCHEMA_VERSION,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            restarts: 4,
            completed: vec![SavedRestart {
                restart: 1,
                assignment: vec![0, 0, 1, 2, 1],
                blocks: vec![
                    BlockReport { size: 2, terminals: 3, externals: 1, feasible: true },
                    BlockReport { size: 2, terminals: 4, externals: 0, feasible: true },
                    BlockReport { size: 1, terminals: 1, externals: 0, feasible: false },
                ],
                device_count: 3,
                lower_bound: 2,
                feasible: false,
                cut: 4,
                iterations: 3,
                improve_calls: 9,
                total_moves: 17,
                completion: Completion::Degraded,
                counters: Counter::ALL.iter().enumerate().map(|(i, _)| i as u64).collect(),
            }],
        }
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let checkpoint = sample_checkpoint();
        let parsed = Checkpoint::parse(&checkpoint.to_text()).unwrap();
        assert_eq!(parsed, checkpoint);
    }

    #[test]
    fn schema_version_mismatch_is_typed() {
        let text = sample_checkpoint().to_text();
        let old =
            text.replacen(&format!("v{SCHEMA_VERSION}"), &format!("v{}", SCHEMA_VERSION - 1), 1);
        assert_eq!(
            Checkpoint::parse(&old).unwrap_err(),
            ReadCheckpointError::SchemaVersionMismatch {
                found: SCHEMA_VERSION - 1,
                expected: SCHEMA_VERSION
            }
        );
    }

    #[test]
    fn truncation_is_a_typed_error_never_a_panic() {
        let text = sample_checkpoint().to_text();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let truncated = &text[..cut];
            if truncated == text {
                continue;
            }
            match Checkpoint::parse(truncated) {
                Err(_) => {}
                // A cut right before the final newline of `end` still
                // parses (line iteration does not need the trailing
                // newline); anything else must fail.
                Ok(parsed) => assert_eq!(parsed, sample_checkpoint()),
            }
        }
    }

    #[test]
    fn corrupt_counts_are_rejected() {
        let text = sample_checkpoint().to_text();
        let bad = text.replace("assignment 5", "assignment 6");
        assert!(matches!(
            Checkpoint::parse(&bad).unwrap_err(),
            ReadCheckpointError::Malformed { .. }
        ));
    }

    #[test]
    fn fingerprint_depends_on_inputs() {
        let g = window_circuit(&WindowConfig::new("w", 120, 12), 5);
        let g2 = window_circuit(&WindowConfig::new("w", 120, 12), 6);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let a = fingerprint_run(&g, constraints, &config, None, 4);
        assert_eq!(a, fingerprint_run(&g, constraints, &config, None, 4), "stable");
        assert_ne!(a, fingerprint_run(&g2, constraints, &config, None, 4), "graph");
        assert_ne!(a, fingerprint_run(&g, constraints, &config, None, 5), "restarts");
        let diverged = FpartConfig { seed: config.seed + 1, ..config.clone() };
        assert_ne!(a, fingerprint_run(&g, constraints, &diverged, None, 4), "config");
        let ml = MultilevelConfig::default();
        assert_ne!(a, fingerprint_run(&g, constraints, &config, Some(&ml), 4), "mode");
        // Thread counts do not change the fingerprint: a checkpoint from
        // a parallel run resumes on a single thread.
        let b = fingerprint_run(&g, constraints, &config, Some(&ml), 4);
        let ml8 = MultilevelConfig { threads: 8, ..ml };
        assert_eq!(b, fingerprint_run(&g, constraints, &config, Some(&ml8), 4));
    }

    #[test]
    fn durable_without_checkpointing_matches_observed_search() {
        let g = window_circuit(&WindowConfig::new("w", 180, 18), 5);
        let constraints = fpart_device::DeviceConstraints::new(35, 60);
        let config = FpartConfig::default();
        let fp = fingerprint_run(&g, constraints, &config, None, 3);
        let durable =
            partition_restarts_durable(&g, constraints, &config, None, 3, 2, fp, None, None)
                .unwrap();
        let plain = partition_restarts_observed(&g, constraints, &config, 3, 2).unwrap();
        assert_eq!(durable.outcome.assignment, plain.outcome.assignment);
        assert_eq!(durable.outcome.cut, plain.outcome.cut);
        assert_eq!(durable.outcome.device_count, plain.outcome.device_count);
        for c in Counter::ALL {
            assert_eq!(durable.totals.get(c), plain.totals.get(c), "{}", c.name());
        }
    }

    #[test]
    fn resume_from_partial_checkpoint_is_bit_identical() {
        let g = window_circuit(&WindowConfig::new("w", 200, 20), 9);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let ml = MultilevelConfig { coarsen_floor: 64, ..MultilevelConfig::default() };
        let restarts = 4;
        let fp = fingerprint_run(&g, constraints, &config, Some(&ml), restarts);

        let full =
            partition_multilevel_restarts_observed(&g, constraints, &config, &ml, restarts, 2)
                .unwrap();

        // Simulate a crash after restarts 0 and 2 completed.
        let mut partial = Vec::new();
        for i in [0usize, 2] {
            let (result, metrics) =
                observed_multilevel_restart_job(&g, constraints, &config, &ml, 1, i, None);
            partial.push(SavedRestart::from_outcome(i, &result.unwrap(), &metrics));
        }
        let snapshot = Checkpoint {
            schema_version: SCHEMA_VERSION,
            fingerprint: fp,
            restarts,
            completed: partial,
        };
        let roundtripped = Checkpoint::parse(&snapshot.to_text()).unwrap();

        for threads in [1usize, 4] {
            let resumed = partition_restarts_durable(
                &g,
                constraints,
                &config,
                Some(&ml),
                restarts,
                threads,
                fp,
                Some(&roundtripped),
                None,
            )
            .unwrap();
            assert_eq!(resumed.outcome.assignment, full.outcome.assignment, "threads={threads}");
            assert_eq!(resumed.outcome.cut, full.outcome.cut);
            assert_eq!(resumed.outcome.device_count, full.outcome.device_count);
            assert_eq!(resumed.outcome.feasible, full.outcome.feasible);
            assert_eq!(
                resumed.totals.get(Counter::RestartsResumed),
                2,
                "both saved restarts restored"
            );
            // Counter totals still equal the field-wise per-restart sums.
            for c in Counter::ALL {
                let sum: u64 = resumed.per_restart.iter().map(|m| m.get(c)).sum();
                assert_eq!(resumed.totals.get(c), sum, "{}", c.name());
            }
        }
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let g = window_circuit(&WindowConfig::new("w", 120, 12), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let fp = fingerprint_run(&g, constraints, &config, None, 2);
        let snapshot = Checkpoint {
            schema_version: SCHEMA_VERSION,
            fingerprint: fp ^ 1,
            restarts: 2,
            completed: Vec::new(),
        };
        assert!(snapshot.verify(fp).is_err());
        let err = partition_restarts_durable(
            &g,
            constraints,
            &config,
            None,
            2,
            1,
            fp,
            Some(&snapshot),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::InvalidConfig { .. }));
    }

    #[test]
    fn writer_persists_snapshots_and_counts_writes() {
        let dir =
            std::env::temp_dir().join(format!("fpart-checkpoint-writer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");

        let g = window_circuit(&WindowConfig::new("w", 150, 15), 3);
        let constraints = fpart_device::DeviceConstraints::new(35, 60);
        let config = FpartConfig::default();
        let restarts = 3;
        let fp = fingerprint_run(&g, constraints, &config, None, restarts);
        let writer = CheckpointWriter::spawn(path.clone(), Duration::ZERO);
        let report = partition_restarts_durable(
            &g,
            constraints,
            &config,
            None,
            restarts,
            2,
            fp,
            None,
            Some(&writer),
        )
        .unwrap();
        let writes = writer.finish().unwrap();
        assert!(writes >= 1, "at least one checkpoint written");

        let snapshot = read_checkpoint(&path).unwrap();
        snapshot.verify(fp).unwrap();
        assert_eq!(snapshot.restarts, restarts);
        assert_eq!(snapshot.completed.len(), restarts, "final snapshot covers all restarts");

        // Resuming from the final snapshot recomputes nothing and still
        // reproduces the search result exactly.
        let resumed = partition_restarts_durable(
            &g,
            constraints,
            &config,
            None,
            restarts,
            1,
            fp,
            Some(&snapshot),
            None,
        )
        .unwrap();
        assert_eq!(resumed.outcome.assignment, report.outcome.assignment);
        assert_eq!(resumed.outcome.cut, report.outcome.cut);
        assert_eq!(resumed.totals.get(Counter::RestartsResumed), restarts as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_throttles_but_always_flushes_the_last_snapshot() {
        let dir =
            std::env::temp_dir().join(format!("fpart-checkpoint-throttle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let writer = CheckpointWriter::spawn(path.clone(), Duration::from_hours(1));
        for completed in 0..3usize {
            let mut snapshot = sample_checkpoint();
            snapshot.restarts = 10;
            snapshot.completed[0].restart = completed;
            writer.submit(snapshot);
        }
        let writes = writer.finish().unwrap();
        // First submit writes immediately; the rest are throttled and
        // the newest one flushes at finish.
        assert_eq!(writes, 2);
        let snapshot = read_checkpoint(&path).unwrap();
        assert_eq!(snapshot.completed[0].restart, 2, "latest snapshot wins");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
