//! Fingerprint-keyed memoization: a transposition table for partitioning.
//!
//! Repeated and near-identical requests — a re-run of the same netlist,
//! a post-ECO repartition on a session that has seen the graph before —
//! redo two expensive artifacts from scratch: the coarsening
//! [`Hierarchy`] the n-level V-cycle builds once per restart, and the
//! restart search itself. This module caches both, keyed by the
//! zobrist-style [`Fingerprint`] from
//! [`fpart_hypergraph::fingerprint`]:
//!
//! * the **hierarchy cache** maps (graph fingerprint, order checksum,
//!   coarsening parameters) → the finished [`Hierarchy`], bounded by an
//!   entry count *and* an approximate-bytes budget (the same PR 7
//!   accounting the byte-budgeted coarsener charges per level);
//! * the **solution memo** maps a per-restart run key (graph, device
//!   constraints, normalized configuration, diversified seeds) → the
//!   restart's finished assignment, so an identical restart replays its
//!   result instead of searching again.
//!
//! Invalidation is automatic: any netlist edit changes the fingerprint
//! (maintained in O(edit) through [`fpart_hypergraph::apply_script`]),
//! so a stale entry can never be *addressed* — it just ages out of the
//! LRU. Because the XOR-composed fingerprint is insensitive to
//! insertion order while node/net ids are not, every key also carries
//! [`fpart_hypergraph::order_checksum`], which pins the id assignment
//! that all cached id-indexed artifacts depend on.
//!
//! Determinism contract: a memoized run must be bit-identical to the
//! cold run it replaces. Two rules enforce this:
//!
//! * solutions are stored and consulted only for runs with **no
//!   result-shaping budget** (no deadline, pass/move caps, or fault
//!   plan — see [`memoizable`]; a cancellation token is tolerated)
//!   whose completion was [`Complete`](crate::Completion::Complete);
//!   everything such a run produces is a pure function of its key;
//! * a memo hit is **verified** against the live graph before it is
//!   trusted (assignment coverage, block-id range, feasibility and cut
//!   cross-check), and falls back to the cold path on any mismatch, so
//!   even a 128-bit collision cannot degrade quality.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use fpart_device::DeviceConstraints;
use fpart_hypergraph::coarsen::Hierarchy;
use fpart_hypergraph::Fingerprint;

use crate::budget::RunBudget;
use crate::config::FpartConfig;
use crate::multilevel::MultilevelConfig;

/// Size bounds of a [`MemoStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoConfig {
    /// Maximum number of cached coarsening hierarchies.
    pub max_hierarchies: usize,
    /// Approximate-bytes budget across all cached hierarchies, using
    /// [`Hierarchy::approx_bytes`] — the same estimate the
    /// byte-budgeted coarsener charges per level.
    pub max_hierarchy_bytes: u64,
    /// Maximum number of memoized restart solutions.
    pub max_solutions: usize,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig { max_hierarchies: 64, max_hierarchy_bytes: 256 << 20, max_solutions: 4096 }
    }
}

/// Cumulative cache statistics, readable at any time via
/// [`MemoStore::stats`] and surfaced per run through the
/// [`Counter`](crate::Counter) set (`SCHEMA_VERSION` 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hierarchy-cache lookups that returned a cached hierarchy.
    pub hierarchy_hits: u64,
    /// Hierarchy-cache lookups that missed.
    pub hierarchy_misses: u64,
    /// Hierarchies evicted to honor the entry or byte bound.
    pub hierarchy_evictions: u64,
    /// Approximate bytes currently held by cached hierarchies.
    pub hierarchy_bytes: u64,
    /// Hierarchies currently cached.
    pub hierarchy_entries: u64,
    /// Solution-memo lookups that returned a stored solution.
    pub solution_hits: u64,
    /// Solution-memo lookups that missed.
    pub solution_misses: u64,
    /// Solutions evicted to honor the entry bound.
    pub solution_evictions: u64,
    /// Solutions currently memoized.
    pub solution_entries: u64,
}

/// Cache key of one coarsening hierarchy: the graph identity plus every
/// parameter [`coarsen_to_floor_budgeted`] derives the hierarchy from.
/// Worker threads are deliberately absent — the hierarchy is
/// thread-count invariant.
///
/// [`coarsen_to_floor_budgeted`]: fpart_hypergraph::coarsen::coarsen_to_floor_budgeted
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierarchyKey {
    /// 128-bit content fingerprint of the input hypergraph.
    pub graph: Fingerprint,
    /// Insertion-order checksum pinning the node/net id assignment.
    pub order: u64,
    /// Cluster size cap.
    pub cap: u64,
    /// Coarsening floor.
    pub floor: usize,
    /// Hierarchy depth limit.
    pub max_levels: usize,
    /// Matching seed.
    pub seed: u64,
    /// Estimated-byte cap of hierarchy construction (part of the key:
    /// a tighter cap yields a shallower hierarchy).
    pub max_bytes: Option<u64>,
}

/// A cached coarsening hierarchy and whether the byte cap truncated it
/// (a truncated hierarchy degrades the run's completion, so replaying
/// the flag keeps cached and cold runs identical).
#[derive(Debug, Clone)]
pub struct CachedHierarchy {
    /// The finished hierarchy.
    pub hierarchy: Hierarchy,
    /// Whether [`MemoryBudget`](crate::MemoryBudget) stopped coarsening
    /// before the floor.
    pub truncated: bool,
}

/// The memoized result of one restart: everything needed to rebuild the
/// restart's [`PartitionOutcome`](crate::PartitionOutcome) fields that
/// feed the deterministic restart reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoSolution {
    /// Final dense block index per node.
    pub assignment: Vec<u32>,
    /// Number of devices used.
    pub device_count: usize,
    /// Cut nets of the stored assignment (cross-checked on replay).
    pub cut: usize,
    /// Whether the stored assignment met the constraints.
    pub feasible: bool,
    /// Peeling iterations the cold restart executed.
    pub iterations: usize,
    /// `Improve(...)` calls the cold restart executed.
    pub improve_calls: usize,
    /// Moves the cold restart retained.
    pub total_moves: usize,
}

struct HierarchyEntry {
    value: Arc<CachedHierarchy>,
    bytes: u64,
    last_used: u64,
}

struct SolutionEntry {
    value: Arc<MemoSolution>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    tick: u64,
    hierarchies: HashMap<HierarchyKey, HierarchyEntry>,
    hierarchy_bytes: u64,
    solutions: HashMap<Fingerprint, SolutionEntry>,
    stats: CacheStats,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Thread-safe fingerprint-keyed store shared across runs (and across a
/// server session's worker) via `Arc`. Lookups and insertions take a
/// single short-held mutex; cached hierarchies are handed out as `Arc`
/// clones, so a hit never copies the hierarchy itself.
pub struct MemoStore {
    config: MemoConfig,
    inner: Mutex<Inner>,
}

impl fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoStore").field("config", &self.config).finish_non_exhaustive()
    }
}

/// Identity comparison: two stores are "equal" only when they are the
/// same store. This is what makes `Option<Arc<MemoStore>>` usable
/// inside `PartialEq`-deriving configuration structs without comparing
/// cache contents (which never affect results).
impl PartialEq for MemoStore {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

impl Eq for MemoStore {}

impl Default for MemoStore {
    fn default() -> Self {
        MemoStore::new(MemoConfig::default())
    }
}

impl MemoStore {
    /// Creates an empty store with the given bounds.
    #[must_use]
    pub fn new(config: MemoConfig) -> MemoStore {
        MemoStore { config, inner: Mutex::new(Inner::default()) }
    }

    /// Creates an empty store with default bounds, ready to share.
    #[must_use]
    pub fn shared() -> Arc<MemoStore> {
        Arc::new(MemoStore::default())
    }

    /// The configured bounds.
    #[must_use]
    pub fn config(&self) -> MemoConfig {
        self.config
    }

    /// A snapshot of the cumulative cache statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("memo store poisoned");
        CacheStats {
            hierarchy_bytes: inner.hierarchy_bytes,
            hierarchy_entries: inner.hierarchies.len() as u64,
            solution_entries: inner.solutions.len() as u64,
            ..inner.stats
        }
    }

    /// Drops every cached hierarchy and solution (statistics survive).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("memo store poisoned");
        inner.hierarchies.clear();
        inner.hierarchy_bytes = 0;
        inner.solutions.clear();
    }

    /// Looks up a cached hierarchy, refreshing its LRU position.
    #[must_use]
    pub fn lookup_hierarchy(&self, key: &HierarchyKey) -> Option<Arc<CachedHierarchy>> {
        let mut inner = self.inner.lock().expect("memo store poisoned");
        let tick = inner.next_tick();
        if let Some(entry) = inner.hierarchies.get_mut(key) {
            entry.last_used = tick;
            let value = Arc::clone(&entry.value);
            inner.stats.hierarchy_hits += 1;
            Some(value)
        } else {
            inner.stats.hierarchy_misses += 1;
            None
        }
    }

    /// Inserts a hierarchy, evicting least-recently-used entries until
    /// both the entry bound and the byte budget hold. A hierarchy
    /// larger than the whole byte budget is not cached at all. Returns
    /// how many entries this insertion evicted.
    pub fn insert_hierarchy(&self, key: HierarchyKey, value: Arc<CachedHierarchy>) -> usize {
        let bytes = value.hierarchy.approx_bytes();
        if bytes > self.config.max_hierarchy_bytes || self.config.max_hierarchies == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("memo store poisoned");
        let tick = inner.next_tick();
        if let Some(old) =
            inner.hierarchies.insert(key, HierarchyEntry { value, bytes, last_used: tick })
        {
            inner.hierarchy_bytes -= old.bytes;
        }
        inner.hierarchy_bytes += bytes;
        let mut evictions = 0;
        while inner.hierarchies.len() > self.config.max_hierarchies
            || inner.hierarchy_bytes > self.config.max_hierarchy_bytes
        {
            let victim = inner
                .hierarchies
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(evicted) = inner.hierarchies.remove(&victim) {
                inner.hierarchy_bytes -= evicted.bytes;
                inner.stats.hierarchy_evictions += 1;
                evictions += 1;
            }
        }
        evictions
    }

    /// Looks up a memoized restart solution, refreshing its LRU
    /// position.
    #[must_use]
    pub fn lookup_solution(&self, key: Fingerprint) -> Option<Arc<MemoSolution>> {
        let mut inner = self.inner.lock().expect("memo store poisoned");
        let tick = inner.next_tick();
        if let Some(entry) = inner.solutions.get_mut(&key) {
            entry.last_used = tick;
            let value = Arc::clone(&entry.value);
            inner.stats.solution_hits += 1;
            Some(value)
        } else {
            inner.stats.solution_misses += 1;
            None
        }
    }

    /// Memoizes a restart solution, evicting the least-recently-used
    /// entry when the bound is reached. Returns how many entries this
    /// insertion evicted.
    pub fn insert_solution(&self, key: Fingerprint, value: MemoSolution) -> usize {
        if self.config.max_solutions == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("memo store poisoned");
        let tick = inner.next_tick();
        inner.solutions.insert(key, SolutionEntry { value: Arc::new(value), last_used: tick });
        let mut evictions = 0;
        while inner.solutions.len() > self.config.max_solutions {
            let victim = inner
                .solutions
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if inner.solutions.remove(&victim).is_some() {
                inner.stats.solution_evictions += 1;
                evictions += 1;
            }
        }
        evictions
    }
}

/// Whether a run may consult and feed the solution memo: only runs with
/// **no external budget of any kind** qualify, because only their
/// results are a pure function of the memo key. Hierarchy caching is
/// exempt from this test — the hierarchy never depends on the run
/// budget (the byte cap that can truncate it is part of the key).
#[must_use]
pub fn memoizable(config: &FpartConfig) -> bool {
    // A cancellation token is tolerated: only `Complete` outcomes are
    // ever stored, and a memo hit merely replaces a run that would
    // have completed with the identical result. Whether a token fires
    // before or during a particular run is wall-clock-racy by nature,
    // so serving the completed result instead is within the
    // cancellation contract. Deadlines and pass/move caps are not
    // tolerated — a capped run completes *degraded*, deterministically,
    // and a memo hit would wrongly upgrade it.
    config.budget.deadline.is_none()
        && config.budget.max_passes.is_none()
        && config.budget.max_moves.is_none()
        && config.fault_plan.is_none()
}

/// Builds the solution-memo key of one restart: the graph identity
/// (content fingerprint + id-order checksum) chained with the device
/// constraints and the *already diversified* per-restart configuration.
/// Thread counts, cancellation tokens, and the memo handle itself are
/// normalized out — none of them changes the restart's result.
#[must_use]
pub fn restart_solution_key(
    graph: Fingerprint,
    order: u64,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: &MultilevelConfig,
) -> Fingerprint {
    let normalized_config = FpartConfig {
        budget: RunBudget { cancel: None, ..config.budget.clone() },
        ..config.clone()
    };
    let normalized_ml = MultilevelConfig { threads: 1, memo: None, ..ml.clone() };
    graph
        .fold_u64(order)
        .fold_str("fpart-memo-restart-v1")
        .fold_str(&format!("{constraints:?}"))
        .fold_str(&format!("{normalized_config:?}"))
        .fold_str(&format!("{normalized_ml:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::coarsen::coarsen_to_floor;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    use fpart_hypergraph::{fingerprint_graph, order_checksum};

    fn hierarchy(n: usize, seed: u64) -> Hierarchy {
        let g = window_circuit(&WindowConfig::new("m", n, 8), seed);
        coarsen_to_floor(&g, 8, 16, 8, seed)
    }

    fn key(seed: u64) -> HierarchyKey {
        let g = window_circuit(&WindowConfig::new("m", 50, 8), seed);
        HierarchyKey {
            graph: fingerprint_graph(&g),
            order: order_checksum(&g),
            cap: 8,
            floor: 16,
            max_levels: 8,
            seed,
            max_bytes: None,
        }
    }

    #[test]
    fn hierarchy_roundtrip_and_stats() {
        let store = MemoStore::default();
        let k = key(1);
        assert!(store.lookup_hierarchy(&k).is_none());
        let h = Arc::new(CachedHierarchy { hierarchy: hierarchy(200, 1), truncated: false });
        store.insert_hierarchy(k, Arc::clone(&h));
        let hit = store.lookup_hierarchy(&k).expect("cached");
        assert_eq!(hit.hierarchy.level_count(), h.hierarchy.level_count());
        let stats = store.stats();
        assert_eq!(stats.hierarchy_hits, 1);
        assert_eq!(stats.hierarchy_misses, 1);
        assert_eq!(stats.hierarchy_entries, 1);
        assert!(stats.hierarchy_bytes > 0);
    }

    #[test]
    fn hierarchy_entry_bound_evicts_lru() {
        let store = MemoStore::new(MemoConfig { max_hierarchies: 2, ..MemoConfig::default() });
        let (k1, k2, k3) = (key(1), key(2), key(3));
        for k in [k1, k2, k3] {
            store.insert_hierarchy(
                k,
                Arc::new(CachedHierarchy { hierarchy: hierarchy(100, k.seed), truncated: false }),
            );
        }
        // k1 was least recently used, so it went first.
        assert!(store.lookup_hierarchy(&k1).is_none());
        assert!(store.lookup_hierarchy(&k2).is_some());
        assert!(store.lookup_hierarchy(&k3).is_some());
        assert_eq!(store.stats().hierarchy_evictions, 1);
    }

    #[test]
    fn hierarchy_byte_budget_evicts_and_rejects_oversized() {
        let h = hierarchy(300, 7);
        let bytes = h.approx_bytes();
        let store = MemoStore::new(MemoConfig {
            max_hierarchies: 16,
            max_hierarchy_bytes: bytes + bytes / 2,
            ..MemoConfig::default()
        });
        let (k1, k2) = (key(1), key(2));
        store.insert_hierarchy(
            k1,
            Arc::new(CachedHierarchy { hierarchy: h.clone(), truncated: false }),
        );
        store.insert_hierarchy(
            k2,
            Arc::new(CachedHierarchy { hierarchy: h.clone(), truncated: false }),
        );
        // Both together exceed the budget: the first is evicted.
        assert!(store.lookup_hierarchy(&k1).is_none());
        assert!(store.lookup_hierarchy(&k2).is_some());
        assert!(store.stats().hierarchy_bytes <= bytes + bytes / 2);

        // An entry larger than the whole budget is never cached.
        let tiny =
            MemoStore::new(MemoConfig { max_hierarchy_bytes: bytes - 1, ..MemoConfig::default() });
        tiny.insert_hierarchy(key(3), Arc::new(CachedHierarchy { hierarchy: h, truncated: false }));
        assert_eq!(tiny.stats().hierarchy_entries, 0);
    }

    #[test]
    fn solution_roundtrip_and_entry_bound() {
        let store = MemoStore::new(MemoConfig { max_solutions: 2, ..MemoConfig::default() });
        let sol = |seed: u64| MemoSolution {
            assignment: vec![0, 1, seed as u32],
            device_count: 2,
            cut: 1,
            feasible: true,
            iterations: 1,
            improve_calls: 1,
            total_moves: 3,
        };
        let keys: Vec<Fingerprint> = (1..=3).map(|s| Fingerprint::ZERO.fold_u64(s)).collect();
        for (i, k) in keys.iter().enumerate() {
            store.insert_solution(*k, sol(i as u64));
        }
        assert!(store.lookup_solution(keys[0]).is_none(), "LRU evicted");
        assert_eq!(store.lookup_solution(keys[2]).expect("kept").assignment, vec![0, 1, 2]);
        let stats = store.stats();
        assert_eq!(stats.solution_evictions, 1);
        assert_eq!(stats.solution_entries, 2);
    }

    #[test]
    fn restart_key_separates_inputs_and_ignores_threads() {
        let g = window_circuit(&WindowConfig::new("m", 60, 8), 1);
        let fp = fingerprint_graph(&g);
        let order = order_checksum(&g);
        let constraints = DeviceConstraints::new(64, 16);
        let config = FpartConfig::default();
        let ml = MultilevelConfig::default();
        let base = restart_solution_key(fp, order, constraints, &config, &ml);
        assert_eq!(base, restart_solution_key(fp, order, constraints, &config, &ml), "stable");
        let seeded = FpartConfig { seed: config.seed + 1, ..config.clone() };
        assert_ne!(base, restart_solution_key(fp, order, constraints, &seeded, &ml), "seed");
        let reseeded = MultilevelConfig { seed: ml.seed + 1, ..ml.clone() };
        assert_ne!(base, restart_solution_key(fp, order, constraints, &config, &reseeded));
        let threaded = MultilevelConfig { threads: ml.threads + 3, ..ml.clone() };
        assert_eq!(base, restart_solution_key(fp, order, constraints, &config, &threaded));
        let memoed = MultilevelConfig { memo: Some(MemoStore::shared()), ..ml.clone() };
        assert_eq!(base, restart_solution_key(fp, order, constraints, &config, &memoed));
        assert_ne!(
            base,
            restart_solution_key(fp.fold_u64(1), order, constraints, &config, &ml),
            "graph"
        );
        assert_ne!(base, restart_solution_key(fp, order ^ 1, constraints, &config, &ml), "order");
    }

    #[test]
    fn memoizable_requires_unlimited_budget_and_no_faults() {
        use crate::budget::{CancelToken, FaultPlan};
        use std::time::Duration;
        let config = FpartConfig::default();
        assert!(memoizable(&config));
        let deadline = FpartConfig {
            budget: RunBudget { deadline: Some(Duration::from_secs(1)), ..RunBudget::default() },
            ..config.clone()
        };
        assert!(!memoizable(&deadline));
        let capped = FpartConfig {
            budget: RunBudget { max_passes: Some(3), ..RunBudget::default() },
            ..config.clone()
        };
        assert!(!memoizable(&capped));
        let faulted =
            FpartConfig { fault_plan: Some(FaultPlan::panic_at(0, "boom")), ..config.clone() };
        assert!(!memoizable(&faulted));
        // A cancellation token alone does not disqualify: the server
        // always wires one, and only Complete outcomes are memoized.
        let cancellable = FpartConfig {
            budget: RunBudget { cancel: Some(CancelToken::new()), ..RunBudget::default() },
            ..config.clone()
        };
        assert!(memoizable(&cancellable));
    }
}
