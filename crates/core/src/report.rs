//! Human-readable quality reports for finished partitions.
//!
//! Summarizes what the paper's tables measure — device count vs lower
//! bound — plus the per-block resource picture (logic fill and IOB
//! utilization) that explains *why* a result lands where it does: the
//! recursive paradigm's characteristic failure mode is late blocks
//! saturating IOBs while logic sits empty (paper §3).

use std::fmt;

use fpart_device::DeviceConstraints;

use crate::driver::PartitionOutcome;

/// Aggregated quality metrics of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Devices used.
    pub device_count: usize,
    /// Theoretical lower bound `M`.
    pub lower_bound: usize,
    /// Whether all blocks meet the constraints.
    pub feasible: bool,
    /// Nets spanning devices.
    pub cut: usize,
    /// Mean logic fill `S_i / S_MAX` over blocks.
    pub mean_fill: f64,
    /// Smallest block fill.
    pub min_fill: f64,
    /// Mean IOB utilization `T_i / T_MAX` over blocks.
    pub mean_io: f64,
    /// Blocks whose IOBs are ≥ 95 % used while logic is ≤ 70 % used —
    /// the "I/O-saturated, logic-starved" blocks of the paper's §3
    /// discussion.
    pub io_starved_blocks: usize,
    /// Fill histogram over deciles: `fill_histogram[d]` counts blocks
    /// with `d·10 % ≤ fill < (d+1)·10 %` (the last bucket includes 100 %).
    pub fill_histogram: [usize; 10],
}

impl QualityReport {
    /// Builds the report for an outcome under the device it was
    /// partitioned for.
    ///
    /// # Example
    ///
    /// ```
    /// use fpart_core::{partition, FpartConfig, QualityReport};
    /// use fpart_device::Device;
    /// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    ///
    /// # fn main() -> Result<(), fpart_core::PartitionError> {
    /// let circuit = window_circuit(&WindowConfig::new("demo", 200, 16), 1);
    /// let constraints = Device::XC3020.constraints(0.9);
    /// let outcome = partition(&circuit, constraints, &FpartConfig::default())?;
    /// let report = QualityReport::new(&outcome, constraints);
    /// println!("{report}"); // devices, fill, IOB use, histogram
    /// assert!(report.efficiency() > 0.5);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn new(outcome: &PartitionOutcome, constraints: DeviceConstraints) -> Self {
        let k = outcome.blocks.len();
        let s_max = constraints.s_max.max(1) as f64;
        let t_max = constraints.t_max.max(1) as f64;
        let mut mean_fill = 0.0;
        let mut min_fill = f64::INFINITY;
        let mut mean_io = 0.0;
        let mut io_starved = 0usize;
        let mut hist = [0usize; 10];
        for b in &outcome.blocks {
            let fill = b.size as f64 / s_max;
            let io = b.terminals as f64 / t_max;
            mean_fill += fill;
            mean_io += io;
            min_fill = min_fill.min(fill);
            if io >= 0.95 && fill <= 0.70 {
                io_starved += 1;
            }
            let bucket = ((fill * 10.0) as usize).min(9);
            hist[bucket] += 1;
        }
        if k > 0 {
            mean_fill /= k as f64;
            mean_io /= k as f64;
        } else {
            min_fill = 0.0;
        }
        QualityReport {
            device_count: k,
            lower_bound: outcome.lower_bound,
            feasible: outcome.feasible,
            cut: outcome.cut,
            mean_fill,
            min_fill,
            mean_io,
            io_starved_blocks: io_starved,
            fill_histogram: hist,
        }
    }

    /// `M / k` — 1.0 means the theoretical optimum was reached.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.device_count == 0 {
            return 1.0;
        }
        self.lower_bound as f64 / self.device_count as f64
    }
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "devices: {} (lower bound {}, efficiency {:.0}%), feasible: {}, cut nets: {}",
            self.device_count,
            self.lower_bound,
            self.efficiency() * 100.0,
            self.feasible,
            self.cut
        )?;
        writeln!(
            f,
            "logic fill: mean {:.0}%, min {:.0}%; IOB use: mean {:.0}%; I/O-starved blocks: {}",
            self.mean_fill * 100.0,
            self.min_fill * 100.0,
            self.mean_io * 100.0,
            self.io_starved_blocks
        )?;
        write!(f, "fill histogram (deciles): ")?;
        for (d, count) in self.fill_histogram.iter().enumerate() {
            if *count > 0 {
                write!(f, "{d}0s:{count} ")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, FpartConfig};
    use fpart_device::Device;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    fn sample_report() -> QualityReport {
        let g = window_circuit(&WindowConfig::new("w", 300, 24), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
        QualityReport::new(&outcome, constraints)
    }

    #[test]
    fn report_aggregates_consistently() {
        let r = sample_report();
        assert!(r.feasible);
        assert!(r.device_count >= r.lower_bound);
        assert!(r.efficiency() > 0.0 && r.efficiency() <= 1.0);
        assert!(r.mean_fill > 0.0 && r.mean_fill <= 1.0);
        assert!(r.min_fill <= r.mean_fill);
        assert_eq!(
            r.fill_histogram.iter().sum::<usize>(),
            r.device_count,
            "every block lands in exactly one decile"
        );
    }

    #[test]
    fn display_is_nonempty_and_mentions_devices() {
        let r = sample_report();
        let text = r.to_string();
        assert!(text.contains("devices:"));
        assert!(text.contains("fill histogram"));
    }

    #[test]
    fn empty_outcome_report() {
        let g = fpart_hypergraph::HypergraphBuilder::new().finish().unwrap();
        let constraints = Device::XC3020.constraints(0.9);
        let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
        let r = QualityReport::new(&outcome, constraints);
        assert_eq!(r.device_count, 0);
        assert_eq!(r.efficiency(), 1.0);
        assert_eq!(r.min_fill, 0.0);
    }
}
