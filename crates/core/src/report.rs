//! Human-readable quality reports for finished partitions.
//!
//! Summarizes what the paper's tables measure — device count vs lower
//! bound — plus the per-block resource picture (logic fill and IOB
//! utilization) that explains *why* a result lands where it does: the
//! recursive paradigm's characteristic failure mode is late blocks
//! saturating IOBs while logic sits empty (paper §3).

use std::fmt;

use fpart_device::DeviceConstraints;

use crate::driver::PartitionOutcome;

/// Aggregated quality metrics of a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityReport {
    /// Devices used.
    pub device_count: usize,
    /// Theoretical lower bound `M`.
    pub lower_bound: usize,
    /// Whether all blocks meet the constraints.
    pub feasible: bool,
    /// Nets spanning devices.
    pub cut: usize,
    /// Mean logic fill `S_i / S_MAX` over blocks.
    pub mean_fill: f64,
    /// Smallest block fill.
    pub min_fill: f64,
    /// Mean IOB utilization `T_i / T_MAX` over blocks.
    pub mean_io: f64,
    /// Blocks whose IOBs are ≥ 95 % used while logic is ≤ 70 % used —
    /// the "I/O-saturated, logic-starved" blocks of the paper's §3
    /// discussion.
    pub io_starved_blocks: usize,
    /// Fill histogram over deciles: `fill_histogram[d]` counts blocks
    /// with `d·10 % ≤ fill < (d+1)·10 %` (the last bucket includes 100 %).
    pub fill_histogram: [usize; 10],
}

impl QualityReport {
    /// Builds the report for an outcome under the device it was
    /// partitioned for.
    ///
    /// # Example
    ///
    /// ```
    /// use fpart_core::{partition, FpartConfig, QualityReport};
    /// use fpart_device::Device;
    /// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    ///
    /// # fn main() -> Result<(), fpart_core::PartitionError> {
    /// let circuit = window_circuit(&WindowConfig::new("demo", 200, 16), 1);
    /// let constraints = Device::XC3020.constraints(0.9);
    /// let outcome = partition(&circuit, constraints, &FpartConfig::default())?;
    /// let report = QualityReport::new(&outcome, constraints);
    /// println!("{report}"); // devices, fill, IOB use, histogram
    /// assert!(report.efficiency() > 0.5);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn new(outcome: &PartitionOutcome, constraints: DeviceConstraints) -> Self {
        let k = outcome.blocks.len();
        let s_max = constraints.s_max.max(1) as f64;
        let t_max = constraints.t_max.max(1) as f64;
        let mut mean_fill = 0.0;
        let mut min_fill = f64::INFINITY;
        let mut mean_io = 0.0;
        let mut io_starved = 0usize;
        let mut hist = [0usize; 10];
        for b in &outcome.blocks {
            let fill = b.size as f64 / s_max;
            let io = b.terminals as f64 / t_max;
            mean_fill += fill;
            mean_io += io;
            min_fill = min_fill.min(fill);
            if io >= 0.95 && fill <= 0.70 {
                io_starved += 1;
            }
            let bucket = ((fill * 10.0) as usize).min(9);
            hist[bucket] += 1;
        }
        if k > 0 {
            mean_fill /= k as f64;
            mean_io /= k as f64;
        } else {
            min_fill = 0.0;
        }
        QualityReport {
            device_count: k,
            lower_bound: outcome.lower_bound,
            feasible: outcome.feasible,
            cut: outcome.cut,
            mean_fill,
            min_fill,
            mean_io,
            io_starved_blocks: io_starved,
            fill_histogram: hist,
        }
    }

    /// `M / k` — 1.0 means the theoretical optimum was reached.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.device_count == 0 {
            return 1.0;
        }
        self.lower_bound as f64 / self.device_count as f64
    }

    /// Serializes the report as a single JSON object (dependency-free,
    /// hand-rolled like the rest of [`crate::obs`]). Field names match
    /// the struct fields plus a derived `"efficiency"`; the format is
    /// covered by [`crate::obs::SCHEMA_VERSION`].
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;

        use crate::obs::push_json_f64;

        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"device_count\": {}, \"lower_bound\": {}, \"feasible\": {}, \"cut\": {}, ",
            self.device_count, self.lower_bound, self.feasible, self.cut
        );
        out.push_str("\"efficiency\": ");
        push_json_f64(&mut out, self.efficiency());
        out.push_str(", \"mean_fill\": ");
        push_json_f64(&mut out, self.mean_fill);
        out.push_str(", \"min_fill\": ");
        push_json_f64(&mut out, self.min_fill);
        out.push_str(", \"mean_io\": ");
        push_json_f64(&mut out, self.mean_io);
        let _ = write!(
            out,
            ", \"io_starved_blocks\": {}, \"fill_histogram\": [",
            self.io_starved_blocks
        );
        for (d, count) in self.fill_histogram.iter().enumerate() {
            if d > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{count}");
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for QualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "devices: {} (lower bound {}, efficiency {:.0}%), feasible: {}, cut nets: {}",
            self.device_count,
            self.lower_bound,
            self.efficiency() * 100.0,
            self.feasible,
            self.cut
        )?;
        writeln!(
            f,
            "logic fill: mean {:.0}%, min {:.0}%; IOB use: mean {:.0}%; I/O-starved blocks: {}",
            self.mean_fill * 100.0,
            self.min_fill * 100.0,
            self.mean_io * 100.0,
            self.io_starved_blocks
        )?;
        write!(f, "fill histogram (deciles): ")?;
        for (d, count) in self.fill_histogram.iter().enumerate() {
            if *count > 0 {
                write!(f, "{d}0s:{count} ")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{partition, FpartConfig};
    use fpart_device::Device;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    fn sample_report() -> QualityReport {
        let g = window_circuit(&WindowConfig::new("w", 300, 24), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
        QualityReport::new(&outcome, constraints)
    }

    #[test]
    fn report_aggregates_consistently() {
        let r = sample_report();
        assert!(r.feasible);
        assert!(r.device_count >= r.lower_bound);
        assert!(r.efficiency() > 0.0 && r.efficiency() <= 1.0);
        assert!(r.mean_fill > 0.0 && r.mean_fill <= 1.0);
        assert!(r.min_fill <= r.mean_fill);
        assert_eq!(
            r.fill_histogram.iter().sum::<usize>(),
            r.device_count,
            "every block lands in exactly one decile"
        );
    }

    #[test]
    fn display_is_nonempty_and_mentions_devices() {
        let r = sample_report();
        let text = r.to_string();
        assert!(text.contains("devices:"));
        assert!(text.contains("fill histogram"));
    }

    /// Hand-builds an outcome whose blocks have exactly the given
    /// (size, terminals) usages, for boundary-value tests.
    fn outcome_with_blocks(
        blocks: &[(u64, usize)],
        constraints: DeviceConstraints,
    ) -> PartitionOutcome {
        let blocks: Vec<crate::BlockReport> = blocks
            .iter()
            .map(|&(size, terminals)| crate::BlockReport {
                size,
                terminals,
                externals: 0,
                feasible: constraints.fits(size, terminals),
            })
            .collect();
        PartitionOutcome {
            assignment: Vec::new(),
            device_count: blocks.len(),
            feasible: blocks.iter().all(|b| b.feasible),
            blocks,
            lower_bound: 1,
            cut: 0,
            iterations: 0,
            improve_calls: 0,
            total_moves: 0,
            elapsed: std::time::Duration::ZERO,
            trace: crate::Trace::disabled(),
            metrics: crate::obs::Metrics::disabled(),
            completion: crate::budget::Completion::Complete,
        }
    }

    #[test]
    fn fill_histogram_boundaries() {
        let constraints = DeviceConstraints::new(100, 100);
        // 0 % fill lands in the first decile; exactly 100 % lands in the
        // last (not an out-of-range 11th bucket); decile edges like 10 %
        // belong to the upper bucket (d·10 % ≤ fill < (d+1)·10 %).
        let outcome =
            outcome_with_blocks(&[(0, 1), (100, 1), (10, 1), (9, 1), (99, 1)], constraints);
        let r = QualityReport::new(&outcome, constraints);
        assert_eq!(r.fill_histogram[0], 2, "0% and 9% are decile 0");
        assert_eq!(r.fill_histogram[1], 1, "exactly 10% is decile 1");
        assert_eq!(r.fill_histogram[9], 2, "99% and exactly 100% are decile 9");
        assert_eq!(r.fill_histogram.iter().sum::<usize>(), 5);
        assert_eq!(r.min_fill, 0.0);
    }

    #[test]
    fn io_starved_threshold_edges() {
        let constraints = DeviceConstraints::new(100, 100);
        let starved = |size, terminals| {
            let outcome = outcome_with_blocks(&[(size, terminals)], constraints);
            QualityReport::new(&outcome, constraints).io_starved_blocks
        };
        // Starved means IOB use ≥ 95 % while logic fill ≤ 70 %: both
        // thresholds are inclusive.
        assert_eq!(starved(70, 95), 1, "exactly on both thresholds counts");
        assert_eq!(starved(70, 94), 0, "IOB use just below 95% does not");
        assert_eq!(starved(71, 95), 0, "fill just above 70% does not");
        assert_eq!(starved(0, 100), 1, "empty logic with saturated IOBs counts");
        assert_eq!(starved(70, 100), 1);
    }

    #[test]
    fn json_report_is_complete() {
        let r = sample_report();
        let json = r.to_json();
        for field in [
            "device_count",
            "lower_bound",
            "feasible",
            "cut",
            "efficiency",
            "mean_fill",
            "min_fill",
            "mean_io",
            "io_starved_blocks",
            "fill_histogram",
        ] {
            assert!(json.contains(&format!("\"{field}\":")), "missing {field} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_outcome_report() {
        let g = fpart_hypergraph::HypergraphBuilder::new().finish().unwrap();
        let constraints = Device::XC3020.constraints(0.9);
        let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
        let r = QualityReport::new(&outcome, constraints);
        assert_eq!(r.device_count, 0);
        assert_eq!(r.efficiency(), 1.0);
        assert_eq!(r.min_fill, 0.0);
    }
}
