//! Independent partition verification.
//!
//! Recomputes every metric from scratch — no shared code with the
//! incremental [`crate::PartitionState`] bookkeeping — and reports violations
//! in a structured form. Used by the CLI's `verify` subcommand, the test
//! suite, and anyone consuming assignments produced outside this crate.

use std::collections::HashSet;
use std::fmt;

use fpart_device::DeviceConstraints;
use fpart_hypergraph::Hypergraph;

/// A single verification finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// The assignment's length does not match the graph.
    WrongLength {
        /// Nodes in the graph.
        expected: usize,
        /// Entries in the assignment.
        actual: usize,
    },
    /// An assignment entry references a block ≥ the declared count.
    BlockOutOfRange {
        /// Offending node index.
        node: usize,
        /// The referenced block.
        block: u32,
    },
    /// A block exceeds the device size limit.
    OverSize {
        /// Block index.
        block: usize,
        /// Its total size.
        size: u64,
        /// The limit.
        s_max: u64,
    },
    /// A block exceeds the device terminal limit.
    OverTerminals {
        /// Block index.
        block: usize,
        /// Its terminal count.
        terminals: usize,
        /// The limit.
        t_max: usize,
    },
    /// A declared block holds no cells.
    EmptyBlock {
        /// Block index.
        block: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongLength { expected, actual } => {
                write!(f, "assignment covers {actual} nodes, graph has {expected}")
            }
            Violation::BlockOutOfRange { node, block } => {
                write!(f, "node {node} assigned to out-of-range block {block}")
            }
            Violation::OverSize { block, size, s_max } => {
                write!(f, "block {block} holds {size} cells, limit {s_max}")
            }
            Violation::OverTerminals { block, terminals, t_max } => {
                write!(f, "block {block} needs {terminals} IOBs, limit {t_max}")
            }
            Violation::EmptyBlock { block } => write!(f, "block {block} is empty"),
        }
    }
}

/// Result of verifying an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verification {
    /// All violations found (empty = the partition is valid and feasible).
    pub violations: Vec<Violation>,
    /// Independently recomputed cut (nets spanning > 1 block).
    pub cut: usize,
    /// Independently recomputed per-block sizes.
    pub sizes: Vec<u64>,
    /// Independently recomputed per-block terminal counts.
    pub terminals: Vec<usize>,
}

impl Verification {
    /// `true` when the partition is structurally valid and feasible.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Verifies a `k`-way assignment of `graph` against `constraints`,
/// recomputing all quantities from first principles.
#[must_use]
pub fn verify_assignment(
    graph: &Hypergraph,
    assignment: &[u32],
    k: usize,
    constraints: DeviceConstraints,
) -> Verification {
    let mut violations = Vec::new();
    if assignment.len() != graph.node_count() {
        violations.push(Violation::WrongLength {
            expected: graph.node_count(),
            actual: assignment.len(),
        });
        return Verification { violations, cut: 0, sizes: Vec::new(), terminals: Vec::new() };
    }
    for (node, &block) in assignment.iter().enumerate() {
        if block as usize >= k {
            violations.push(Violation::BlockOutOfRange { node, block });
        }
    }
    if !violations.is_empty() {
        return Verification { violations, cut: 0, sizes: Vec::new(), terminals: Vec::new() };
    }

    let mut sizes = vec![0u64; k];
    for node in graph.node_ids() {
        sizes[assignment[node.index()] as usize] += u64::from(graph.node_size(node));
    }

    // Terminals per block: distinct nets that touch the block and either
    // span more than one block or carry a primary terminal.
    let mut terminals = vec![0usize; k];
    let mut cut = 0usize;
    for net in graph.net_ids() {
        let blocks: HashSet<u32> = graph.pins(net).iter().map(|p| assignment[p.index()]).collect();
        if blocks.len() > 1 {
            cut += 1;
        }
        let exposed = blocks.len() > 1 || graph.net_has_terminal(net);
        if exposed {
            for &b in &blocks {
                terminals[b as usize] += 1;
            }
        }
    }

    for block in 0..k {
        if sizes[block] == 0 {
            violations.push(Violation::EmptyBlock { block });
            continue;
        }
        if !constraints.fits_size(sizes[block]) {
            violations.push(Violation::OverSize {
                block,
                size: sizes[block],
                s_max: constraints.s_max,
            });
        }
        if !constraints.fits_terminals(terminals[block]) {
            violations.push(Violation::OverTerminals {
                block,
                terminals: terminals[block],
                t_max: constraints.t_max,
            });
        }
    }

    Verification { violations, cut, sizes, terminals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::PartitionState;
    use crate::{partition, FpartConfig};
    use fpart_device::Device;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    use fpart_hypergraph::HypergraphBuilder;

    #[test]
    fn fpart_outcome_verifies_clean() {
        let g = window_circuit(&WindowConfig::new("w", 250, 20), 3);
        let constraints = Device::XC3020.constraints(0.9);
        let outcome = partition(&g, constraints, &FpartConfig::default()).expect("runs");
        let v = verify_assignment(&g, &outcome.assignment, outcome.device_count, constraints);
        assert!(v.is_feasible(), "violations: {:?}", v.violations);
        assert_eq!(v.cut, outcome.cut);
        for (b, report) in outcome.blocks.iter().enumerate() {
            assert_eq!(v.sizes[b], report.size);
            assert_eq!(v.terminals[b], report.terminals);
        }
    }

    #[test]
    fn verifier_agrees_with_partition_state() {
        let g = window_circuit(&WindowConfig::new("w", 120, 10), 7);
        let assignment: Vec<u32> = (0..g.node_count() as u32).map(|i| i % 4).collect();
        let state = PartitionState::from_assignment(&g, assignment.clone(), 4);
        let v = verify_assignment(&g, &assignment, 4, DeviceConstraints::new(1000, 1000));
        assert_eq!(v.cut, state.cut_count());
        for b in 0..4 {
            assert_eq!(v.sizes[b], state.block_size(b), "block {b} size");
            assert_eq!(v.terminals[b], state.block_terminals(b), "block {b} terminals");
        }
    }

    #[test]
    fn detects_wrong_length() {
        let g = window_circuit(&WindowConfig::new("w", 10, 2), 1);
        let v = verify_assignment(&g, &[0, 0], 1, DeviceConstraints::new(10, 10));
        assert!(matches!(v.violations[0], Violation::WrongLength { .. }));
    }

    #[test]
    fn detects_out_of_range_block() {
        let g = window_circuit(&WindowConfig::new("w", 4, 1), 1);
        let v = verify_assignment(&g, &[0, 0, 7, 0], 2, DeviceConstraints::new(10, 10));
        assert!(v
            .violations
            .iter()
            .any(|x| matches!(x, Violation::BlockOutOfRange { node: 2, block: 7 })));
    }

    #[test]
    fn detects_constraint_violations_and_empty_blocks() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 9);
        let y = b.add_node("y", 1);
        let e = b.add_net("e", [x, y]).unwrap();
        b.add_terminal("t", e).unwrap();
        let g = b.finish().unwrap();
        // Block 0 holds everything (size 10 > 5), block 1 empty.
        let v = verify_assignment(&g, &[0, 0], 2, DeviceConstraints::new(5, 0));
        assert!(v.violations.iter().any(|x| matches!(x, Violation::OverSize { block: 0, .. })));
        assert!(v
            .violations
            .iter()
            .any(|x| matches!(x, Violation::OverTerminals { block: 0, .. })));
        assert!(v.violations.iter().any(|x| matches!(x, Violation::EmptyBlock { block: 1 })));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::OverSize { block: 3, size: 99, s_max: 57 };
        assert_eq!(v.to_string(), "block 3 holds 99 cells, limit 57");
    }
}
