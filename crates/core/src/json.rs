//! Minimal recursive-descent JSON parser shared by the partition
//! server's request decoding ([`crate::server`]) and the CLI's
//! `fpart report` command.
//!
//! Reads the documents the workspace itself writes (`--metrics`,
//! `--trace-json` lines, JSON-Lines protocol requests), so it covers
//! the full JSON grammar but keeps numbers as `f64` and objects as
//! ordered key/value vectors — enough to navigate and render,
//! deliberately dependency-free like the rest of the workspace.
//!
//! Nesting is bounded by [`MAX_NESTING_DEPTH`]: the parser recurses
//! once per container level, so an adversarial `[[[[…` document would
//! otherwise turn into stack exhaustion. Exceeding the limit is a typed
//! [`JsonParseError::TooDeep`], not a crash.

use std::error::Error;
use std::fmt;

/// Maximum container nesting depth [`Json::parse`] accepts. The
/// workspace's own documents nest a handful of levels; 128 leaves two
/// orders of magnitude of headroom while keeping the recursive parser's
/// stack usage trivially bounded.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Typed parse failure of [`Json::parse`] / [`Json::parse_prefix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonParseError {
    /// Malformed JSON at the given byte offset.
    Syntax {
        /// Byte offset of the first offending character.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// Container nesting exceeded [`MAX_NESTING_DEPTH`].
    TooDeep {
        /// The enforced depth limit.
        limit: usize,
        /// Byte offset of the container that crossed it.
        offset: usize,
    },
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonParseError::Syntax { offset, message } => {
                write!(f, "{message} at byte {offset}")
            }
            JsonParseError::TooDeep { limit, offset } => {
                write!(f, "nesting deeper than {limit} levels at byte {offset}")
            }
        }
    }
}

impl Error for JsonParseError {}

impl From<JsonParseError> for String {
    fn from(e: JsonParseError) -> String {
        e.to_string()
    }
}

/// A parsed JSON value. Object keys keep their document order so report
/// output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as `f64` (the CLI's own documents never
    /// need more than 53 bits of integer precision).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError::Syntax`] with the byte offset of the
    /// first syntax error, or [`JsonParseError::TooDeep`] when
    /// containers nest beyond [`MAX_NESTING_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(value)
    }

    /// Parses the first JSON value in `text` and ignores whatever
    /// follows. For piped input (`fpart partition --metrics - | fpart
    /// report --metrics -`) where the human result summary trails the
    /// document on the same stream.
    ///
    /// # Errors
    ///
    /// Same contract as [`Json::parse`], scoped to the leading value.
    pub fn parse_prefix(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        p.value()
    }

    /// Object member by key (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError::Syntax { offset: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    /// Runs one container parse a level deeper, enforcing
    /// [`MAX_NESTING_DEPTH`] (the recursive parser's only recursion is
    /// through containers, so this bounds the stack).
    fn nested(
        &mut self,
        inner: fn(&mut Self) -> Result<Json, JsonParseError>,
    ) -> Result<Json, JsonParseError> {
        if self.depth >= MAX_NESTING_DEPTH {
            return Err(JsonParseError::TooDeep { limit: MAX_NESTING_DEPTH, offset: self.pos });
        }
        self.depth += 1;
        let value = inner(self);
        self.depth -= 1;
        value
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let bad = |at: usize| JsonParseError::Syntax { offset: at, message: "bad number".into() };
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| bad(start))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| bad(start))
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs never appear in the CLI's
                            // own output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc =
            Json::parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\n\"y\"", "d": null}, "e": true}"#)
                .unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[2], Json::Num(-3.0));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(doc.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(doc.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn parse_prefix_ignores_trailing_text() {
        let doc = Json::parse_prefix("{\"a\": 1}\ndevices: 4, feasible: true\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_u64(), Some(1));
        assert!(Json::parse_prefix("{\"a\": }").is_err());
    }

    #[test]
    fn round_trips_metrics_shapes() {
        let doc = Json::parse(r#"{"schema_version": 8, "totals": {"spans": []}}"#).unwrap();
        assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(8));
        assert_eq!(doc.get("totals").unwrap().get("spans").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn nesting_at_the_limit_parses_and_one_past_is_typed() {
        let ok = "[".repeat(MAX_NESTING_DEPTH) + &"]".repeat(MAX_NESTING_DEPTH);
        assert!(Json::parse(&ok).is_ok());
        let deep = "[".repeat(MAX_NESTING_DEPTH + 1) + &"]".repeat(MAX_NESTING_DEPTH + 1);
        match Json::parse(&deep) {
            Err(JsonParseError::TooDeep { limit, offset }) => {
                assert_eq!(limit, MAX_NESTING_DEPTH);
                assert_eq!(offset, MAX_NESTING_DEPTH);
            }
            other => panic!("expected TooDeep, got {other:?}"),
        }
        // Mixed containers count the same levels.
        let mixed = "{\"a\":".repeat(MAX_NESTING_DEPTH + 1);
        assert!(matches!(Json::parse(&mixed), Err(JsonParseError::TooDeep { .. })));
        // Errors render with their offset for humans.
        let msg = String::from(Json::parse(&deep).unwrap_err());
        assert!(msg.contains("128 levels"), "{msg}");
    }
}
