//! Deterministic fan-out of independent jobs over scoped threads.
//!
//! The multi-run searches (`bipartition_fm` runs, driver restarts, bench
//! table rows) all share the same shape: `count` independent jobs whose
//! results are reduced *sequentially in job-index order*, so the outcome
//! is bit-identical at every thread count. This module provides the
//! fan-out half of that contract using only `std::thread::scope` — no
//! external dependencies, no shared mutable state beyond disjoint result
//! slots.

/// The default worker count for configs that carry one: the
/// `FPART_THREADS` environment variable when set to a positive integer,
/// otherwise 1.
///
/// Every parallel stage in the workspace is bit-identical at every
/// thread count, so overriding the default through the environment can
/// never change a result — it only changes wall time. CI exploits this
/// to run the whole test suite under a thread matrix (`FPART_THREADS=1`
/// and `FPART_THREADS=4`) without touching a single test.
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("FPART_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&t| t > 0).unwrap_or(1)
}

/// Runs `count` independent jobs, optionally across scoped worker
/// threads, returning the results in job-index order.
///
/// Each worker owns a contiguous chunk of the result vector, so no
/// synchronization beyond the scope join is needed and the output is
/// independent of scheduling. `threads` is clamped to `1..=count`; with
/// one thread (or one job) everything runs inline on the caller's
/// thread.
///
/// # Example
///
/// ```
/// use fpart_core::parallel::run_indexed;
///
/// let squares = run_indexed(5, 2, &|i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
#[must_use]
pub fn run_indexed<T: Send>(
    count: usize,
    threads: usize,
    job: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    let threads = threads.max(1).min(count);
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(job(i));
        }
    } else {
        let chunk = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, worker_slots) in slots.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, slot) in worker_slots.iter_mut().enumerate() {
                        *slot = Some(job(w * chunk + i));
                    }
                });
            }
        });
    }
    slots.into_iter().map(|s| s.expect("every job index is executed")).collect()
}

/// [`run_indexed`] with per-job metrics: each job records into its own
/// forked child registry (so workers never share mutable state), and the
/// children are merged back into `metrics` **in job-index order** after
/// the join — the aggregate is bit-identical at every thread count.
///
/// When `metrics` is disabled every child is disabled too, so the jobs
/// keep the one-branch-per-event cost.
///
/// # Example
///
/// ```
/// use fpart_core::obs::{Counter, Metrics};
/// use fpart_core::parallel::run_indexed_metered;
///
/// let mut metrics = Metrics::enabled();
/// let sums = run_indexed_metered(4, 2, &mut metrics, &|i, m| {
///     m.add(Counter::Runs, 1);
///     i * 2
/// });
/// assert_eq!(sums, vec![0, 2, 4, 6]);
/// assert_eq!(metrics.get(Counter::Runs), 4);
/// ```
#[must_use]
pub fn run_indexed_metered<T: Send>(
    count: usize,
    threads: usize,
    metrics: &mut crate::obs::Metrics,
    job: &(dyn Fn(usize, &mut crate::obs::Metrics) -> T + Sync),
) -> Vec<T> {
    let seed = metrics.fork();
    let wrapped = |i: usize| {
        let mut child = seed.fork();
        let out = job(i, &mut child);
        (out, child)
    };
    let results = run_indexed(count, threads, &wrapped);
    let mut out = Vec::with_capacity(results.len());
    for (value, child) in results {
        metrics.merge(&child);
        out.push(value);
    }
    out
}

/// A job that panicked inside a caught fan-out.
///
/// The payload message is recovered when the panic carried a `String` or
/// `&str` (the common `panic!("...")` cases); anything else is reported
/// as an opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the job that panicked.
    pub index: usize,
    /// Recovered panic message.
    pub message: String,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// [`run_indexed`] with per-job panic isolation: a panicking job yields
/// `Err(JobPanic)` in its slot instead of poisoning the whole fan-out,
/// and the surviving results still come back in job-index order, so any
/// reduction over them stays bit-identical at every thread count.
///
/// The panic is caught *inside* the worker closure (a panic escaping a
/// scoped thread would otherwise resurface at the scope join); the
/// default panic hook still prints the payload, so callers that want
/// quiet output should announce the isolation in their logs.
#[must_use]
pub fn run_indexed_caught<T: Send>(
    count: usize,
    threads: usize,
    job: &(dyn Fn(usize) -> T + Sync),
) -> Vec<Result<T, JobPanic>> {
    run_indexed(count, threads, &|i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(i)))
            .map_err(|payload| JobPanic { index: i, message: panic_message(payload.as_ref()) })
    })
}

/// [`run_indexed_metered`] with per-job panic isolation.
///
/// Surviving jobs merge their forked metrics children back into
/// `metrics` in job-index order exactly like [`run_indexed_metered`]; a
/// panicked job contributes nothing here (the caller decides how to
/// account for it, e.g. by synthesizing a placeholder registry).
#[must_use]
pub fn run_indexed_caught_metered<T: Send>(
    count: usize,
    threads: usize,
    metrics: &mut crate::obs::Metrics,
    job: &(dyn Fn(usize, &mut crate::obs::Metrics) -> T + Sync),
) -> Vec<Result<T, JobPanic>> {
    let seed = metrics.fork();
    let wrapped = |i: usize| {
        let mut child = seed.fork();
        let out = job(i, &mut child);
        (out, child)
    };
    run_indexed_caught(count, threads, &wrapped)
        .into_iter()
        .map(|result| match result {
            Ok((value, child)) => {
                metrics.merge(&child);
                Ok(value)
            }
            Err(panic) => Err(panic),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Counter, Metrics};

    #[test]
    fn preserves_job_order() {
        let squares = run_indexed(17, 4, &|i| i * i);
        assert_eq!(squares, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run_indexed(3, 8, &|i| i), vec![0, 1, 2]);
        assert!(run_indexed(0, 2, &|i: usize| i).is_empty());
    }

    #[test]
    fn zero_threads_runs_inline() {
        assert_eq!(run_indexed(4, 0, &|i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn metered_aggregate_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut metrics = Metrics::enabled();
            let out = run_indexed_metered(9, threads, &mut metrics, &|i, m| {
                m.add(Counter::MovesApplied, (i as u64 + 1) * 3);
                m.bump(Counter::Runs);
                i
            });
            (out, metrics)
        };
        let (seq_out, seq_metrics) = run(1);
        for threads in [2, 4, 8] {
            let (out, metrics) = run(threads);
            assert_eq!(out, seq_out, "threads={threads}");
            assert_eq!(metrics, seq_metrics, "threads={threads}");
        }
        assert_eq!(seq_metrics.get(Counter::Runs), 9);
        assert_eq!(seq_metrics.get(Counter::MovesApplied), (1..=9).map(|i| i * 3).sum::<u64>());
    }

    /// Silences the default panic hook for the duration of a closure so
    /// intentional panics do not spam the test output. Serialized by a
    /// mutex: the hook is process-global.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = HOOK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    #[test]
    fn caught_jobs_survive_panics_in_order() {
        with_quiet_panics(|| {
            for threads in [1usize, 2, 4] {
                let results = run_indexed_caught(6, threads, &|i| {
                    assert!(i != 2 && i != 4, "job {i} exploded");
                    i * 10
                });
                assert_eq!(results.len(), 6, "threads={threads}");
                for (i, result) in results.iter().enumerate() {
                    if i == 2 || i == 4 {
                        let panic = result.as_ref().expect_err("job panicked");
                        assert_eq!(panic.index, i);
                        assert!(panic.message.contains("exploded"), "{}", panic.message);
                    } else {
                        assert_eq!(result.as_ref().unwrap(), &(i * 10));
                    }
                }
            }
        });
    }

    #[test]
    fn caught_metered_merges_only_survivors() {
        with_quiet_panics(|| {
            let run = |threads: usize| {
                let mut metrics = Metrics::enabled();
                let results = run_indexed_caught_metered(5, threads, &mut metrics, &|i, m| {
                    m.bump(Counter::Runs);
                    assert!(i != 3, "boom");
                    i
                });
                (results, metrics)
            };
            let (seq_results, seq_metrics) = run(1);
            assert_eq!(seq_metrics.get(Counter::Runs), 4, "panicked job must not merge");
            for threads in [2, 4] {
                let (results, metrics) = run(threads);
                assert_eq!(results, seq_results, "threads={threads}");
                assert_eq!(metrics, seq_metrics, "threads={threads}");
            }
        });
    }

    #[test]
    fn metered_disabled_parent_disables_children() {
        let mut metrics = Metrics::disabled();
        let out = run_indexed_metered(3, 2, &mut metrics, &|i, m| {
            assert!(!m.is_enabled());
            m.bump(Counter::Runs);
            i
        });
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(metrics.get(Counter::Runs), 0);
    }
}
