//! Deterministic fan-out of independent jobs over scoped threads.
//!
//! The multi-run searches (`bipartition_fm` runs, driver restarts, bench
//! table rows) all share the same shape: `count` independent jobs whose
//! results are reduced *sequentially in job-index order*, so the outcome
//! is bit-identical at every thread count. This module provides the
//! fan-out half of that contract using only `std::thread::scope` — no
//! external dependencies, no shared mutable state beyond disjoint result
//! slots.

/// Runs `count` independent jobs, optionally across scoped worker
/// threads, returning the results in job-index order.
///
/// Each worker owns a contiguous chunk of the result vector, so no
/// synchronization beyond the scope join is needed and the output is
/// independent of scheduling. `threads` is clamped to `1..=count`; with
/// one thread (or one job) everything runs inline on the caller's
/// thread.
///
/// # Example
///
/// ```
/// use fpart_core::parallel::run_indexed;
///
/// let squares = run_indexed(5, 2, &|i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
#[must_use]
pub fn run_indexed<T: Send>(
    count: usize,
    threads: usize,
    job: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    let threads = threads.max(1).min(count);
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(job(i));
        }
    } else {
        let chunk = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, worker_slots) in slots.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, slot) in worker_slots.iter_mut().enumerate() {
                        *slot = Some(job(w * chunk + i));
                    }
                });
            }
        });
    }
    slots.into_iter().map(|s| s.expect("every job index is executed")).collect()
}

/// [`run_indexed`] with per-job metrics: each job records into its own
/// forked child registry (so workers never share mutable state), and the
/// children are merged back into `metrics` **in job-index order** after
/// the join — the aggregate is bit-identical at every thread count.
///
/// When `metrics` is disabled every child is disabled too, so the jobs
/// keep the one-branch-per-event cost.
///
/// # Example
///
/// ```
/// use fpart_core::obs::{Counter, Metrics};
/// use fpart_core::parallel::run_indexed_metered;
///
/// let mut metrics = Metrics::enabled();
/// let sums = run_indexed_metered(4, 2, &mut metrics, &|i, m| {
///     m.add(Counter::Runs, 1);
///     i * 2
/// });
/// assert_eq!(sums, vec![0, 2, 4, 6]);
/// assert_eq!(metrics.get(Counter::Runs), 4);
/// ```
#[must_use]
pub fn run_indexed_metered<T: Send>(
    count: usize,
    threads: usize,
    metrics: &mut crate::obs::Metrics,
    job: &(dyn Fn(usize, &mut crate::obs::Metrics) -> T + Sync),
) -> Vec<T> {
    let seed = metrics.fork();
    let wrapped = |i: usize| {
        let mut child = seed.fork();
        let out = job(i, &mut child);
        (out, child)
    };
    let results = run_indexed(count, threads, &wrapped);
    let mut out = Vec::with_capacity(results.len());
    for (value, child) in results {
        metrics.merge(&child);
        out.push(value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Counter, Metrics};

    #[test]
    fn preserves_job_order() {
        let squares = run_indexed(17, 4, &|i| i * i);
        assert_eq!(squares, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run_indexed(3, 8, &|i| i), vec![0, 1, 2]);
        assert!(run_indexed(0, 2, &|i: usize| i).is_empty());
    }

    #[test]
    fn zero_threads_runs_inline() {
        assert_eq!(run_indexed(4, 0, &|i| i + 1), vec![1, 2, 3, 4]);
    }

    #[test]
    fn metered_aggregate_is_thread_count_invariant() {
        let run = |threads: usize| {
            let mut metrics = Metrics::enabled();
            let out = run_indexed_metered(9, threads, &mut metrics, &|i, m| {
                m.add(Counter::MovesApplied, (i as u64 + 1) * 3);
                m.bump(Counter::Runs);
                i
            });
            (out, metrics)
        };
        let (seq_out, seq_metrics) = run(1);
        for threads in [2, 4, 8] {
            let (out, metrics) = run(threads);
            assert_eq!(out, seq_out, "threads={threads}");
            assert_eq!(metrics, seq_metrics, "threads={threads}");
        }
        assert_eq!(seq_metrics.get(Counter::Runs), 9);
        assert_eq!(seq_metrics.get(Counter::MovesApplied), (1..=9).map(|i| i * 3).sum::<u64>());
    }

    #[test]
    fn metered_disabled_parent_disables_children() {
        let mut metrics = Metrics::disabled();
        let out = run_indexed_metered(3, 2, &mut metrics, &|i, m| {
            assert!(!m.is_enabled());
            m.bump(Counter::Runs);
            i
        });
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(metrics.get(Counter::Runs), 0);
    }
}
