//! Deterministic fan-out of independent jobs over scoped threads.
//!
//! The multi-run searches (`bipartition_fm` runs, driver restarts, bench
//! table rows) all share the same shape: `count` independent jobs whose
//! results are reduced *sequentially in job-index order*, so the outcome
//! is bit-identical at every thread count. This module provides the
//! fan-out half of that contract using only `std::thread::scope` — no
//! external dependencies, no shared mutable state beyond disjoint result
//! slots.

/// Runs `count` independent jobs, optionally across scoped worker
/// threads, returning the results in job-index order.
///
/// Each worker owns a contiguous chunk of the result vector, so no
/// synchronization beyond the scope join is needed and the output is
/// independent of scheduling. `threads` is clamped to `1..=count`; with
/// one thread (or one job) everything runs inline on the caller's
/// thread.
///
/// # Example
///
/// ```
/// use fpart_core::parallel::run_indexed;
///
/// let squares = run_indexed(5, 2, &|i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
#[must_use]
pub fn run_indexed<T: Send>(
    count: usize,
    threads: usize,
    job: &(dyn Fn(usize) -> T + Sync),
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    let threads = threads.max(1).min(count);
    if threads <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(job(i));
        }
    } else {
        let chunk = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (w, worker_slots) in slots.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    for (i, slot) in worker_slots.iter_mut().enumerate() {
                        *slot = Some(job(w * chunk + i));
                    }
                });
            }
        });
    }
    slots.into_iter().map(|s| s.expect("every job index is executed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let squares = run_indexed(17, 4, &|i| i * i);
        assert_eq!(squares, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(run_indexed(3, 8, &|i| i), vec![0, 1, 2]);
        assert!(run_indexed(0, 2, &|i: usize| i).is_empty());
    }

    #[test]
    fn zero_threads_runs_inline() {
        assert_eq!(run_indexed(4, 0, &|i| i + 1), vec![1, 2, 3, 4]);
    }
}
