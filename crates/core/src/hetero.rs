//! Heterogeneous multi-way partitioning: minimize total device *cost*
//! over a catalog of device types (Kuznar/Brglez/Zajc, DAC'94 — cited by
//! the paper as related work \[10\]).
//!
//! The homogeneous driver peels blocks for one fixed device. Here every
//! peeling iteration auditions each catalog device: the remainder is
//! constructively bipartitioned against that device's constraints and
//! the candidate is scored by *price per packed cell* — the cheapest way
//! to buy capacity wins, the peel is improved under the winning device's
//! constraints, and the loop continues until the remainder fits some
//! device. Already-peeled blocks keep their device assignment; a final
//! refit pass (see [`fpart_device::fit`]) can only lower the bill.

use fpart_device::fit::PricedDevice;
use fpart_device::BlockUsage;
use fpart_hypergraph::Hypergraph;

use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::driver::PartitionError;
use crate::engine::{improve, ImproveContext};
use crate::initial::bipartition_remainder;
use crate::state::PartitionState;

/// Result of a heterogeneous partitioning run.
#[derive(Debug, Clone)]
pub struct HeteroOutcome {
    /// Final block index per node.
    pub assignment: Vec<u32>,
    /// Device chosen for each block, aligned with block indices.
    pub devices: Vec<PricedDevice>,
    /// Per-block occupancy.
    pub usages: Vec<BlockUsage>,
    /// Total price of the chosen devices.
    pub total_price: f64,
    /// Whether every block fits its chosen device.
    pub feasible: bool,
    /// Nets spanning more than one block.
    pub cut: usize,
}

impl HeteroOutcome {
    /// Number of devices used.
    #[must_use]
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of distinct device types used.
    #[must_use]
    pub fn distinct_devices(&self) -> usize {
        let mut names: Vec<&str> = self.devices.iter().map(|d| d.device.name).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

/// Partitions `graph` onto a heterogeneous catalog, minimizing total
/// device price. `delta` is the filling ratio applied to every device.
///
/// # Errors
///
/// Returns [`PartitionError::OversizedNode`] when a node fits no catalog
/// device and [`PartitionError::IterationLimit`] when peeling stalls.
///
/// # Panics
///
/// Panics if the catalog is empty or `delta` is outside `(0, 1]`.
///
/// # Example
///
/// ```
/// use fpart_core::{partition_hetero, FpartConfig};
/// use fpart_device::fit::default_price_list;
/// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let circuit = window_circuit(&WindowConfig::new("demo", 250, 20), 1);
/// let outcome = partition_hetero(&circuit, &default_price_list(), 0.9, &FpartConfig::default())?;
/// assert!(outcome.feasible);
/// println!("{} devices, {:.1} cost units", outcome.device_count(), outcome.total_price);
/// # Ok(())
/// # }
/// ```
pub fn partition_hetero(
    graph: &Hypergraph,
    catalog: &[PricedDevice],
    delta: f64,
    config: &FpartConfig,
) -> Result<HeteroOutcome, PartitionError> {
    assert!(!catalog.is_empty(), "the device catalog must not be empty");
    config.validate();

    // Sort by price so ties in cost efficiency favour cheaper parts.
    let mut catalog: Vec<PricedDevice> = catalog.to_vec();
    catalog.sort_by(|a, b| {
        a.price.total_cmp(&b.price).then_with(|| a.device.s_ds.cmp(&b.device.s_ds))
    });
    let biggest = catalog
        .iter()
        .map(|p| p.device.constraints(delta))
        .max_by_key(|c| c.s_max)
        .expect("catalog is non-empty");
    for v in graph.node_ids() {
        let size = graph.node_size(v);
        if u64::from(size) > biggest.s_max {
            return Err(PartitionError::OversizedNode { node: v, size, s_max: biggest.s_max });
        }
    }

    let mut state = PartitionState::single_block(graph);
    let remainder = 0usize;
    // Device recorded per state block id (block 0, the remainder, gets
    // its device at the end).
    let mut block_device: Vec<Option<PricedDevice>> = vec![None];
    // A generous iteration cap based on the biggest device.
    let m_biggest = fpart_device::lower_bound(graph, biggest);
    let cap = m_biggest * config.max_iterations_factor * 2 + 32;
    let mut iterations = 0usize;
    let mut remainder_cells = Vec::new();

    while graph.node_count() > 0
        && fits_some(&catalog, delta, state.block_usage(remainder)).is_none()
    {
        iterations += 1;
        if iterations > cap {
            return Err(PartitionError::IterationLimit { iterations });
        }

        // Audition each device type on a snapshot of the remainder.
        state.nodes_in_block_into(remainder, &mut remainder_cells);
        let snapshot: Vec<(fpart_hypergraph::NodeId, usize)> =
            remainder_cells.iter().map(|&v| (v, state.block_of(v))).collect();
        let p = state.add_block();

        let mut best: Option<(f64, usize)> = None; // (price per cell, catalog idx)
        for (idx, priced) in catalog.iter().enumerate() {
            let constraints = priced.device.constraints(delta);
            let m = fpart_device::lower_bound(graph, constraints).max(1);
            let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());
            let ctx = ImproveContext {
                evaluator: &evaluator,
                config,
                remainder,
                minimum_reached: false,
                budget: None,
            };
            bipartition_remainder(&mut state, remainder, p, &ctx);
            let usage = state.block_usage(p);
            // Undo the audition peel.
            state.apply(snapshot.iter().copied());
            if usage.size == 0 || !constraints.fits(usage.size, usage.terminals) {
                continue;
            }
            let per_cell = priced.price / usage.size as f64;
            if best.is_none_or(|(b, _)| per_cell < b) {
                best = Some((per_cell, idx));
            }
        }

        let Some((_, idx)) = best else {
            // No device can host a feasible peel — give up gracefully.
            return Err(PartitionError::IterationLimit { iterations });
        };
        let priced = catalog[idx];
        let constraints = priced.device.constraints(delta);
        let m = fpart_device::lower_bound(graph, constraints).max(1);
        let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());
        let ctx = ImproveContext {
            evaluator: &evaluator,
            config,
            remainder,
            minimum_reached: iterations > m,
            budget: None,
        };
        bipartition_remainder(&mut state, remainder, p, &ctx);
        improve(&mut state, &[remainder, p], &ctx);
        block_device.push(Some(priced));
    }

    // Give the remainder its cheapest fitting device (when non-empty).
    if state.block_size(remainder) > 0 {
        block_device[remainder] = Some(
            fits_some(&catalog, delta, state.block_usage(remainder))
                .unwrap_or_else(|| *catalog.last().expect("non-empty catalog")),
        );
    }

    // Compact: drop empty blocks (an improvement pass can empty one),
    // pairing each surviving block with its recorded device.
    let k = state.block_count();
    let mut dense = vec![u32::MAX; k];
    let mut devices = Vec::new();
    let mut usages = Vec::new();
    for b in 0..k {
        if state.block_size(b) == 0 {
            continue;
        }
        dense[b] = devices.len() as u32;
        let device = block_device[b].unwrap_or_else(|| {
            fits_some(&catalog, delta, state.block_usage(b))
                .unwrap_or_else(|| *catalog.last().expect("non-empty catalog"))
        });
        devices.push(device);
        usages.push(state.block_usage(b));
    }
    let assignment: Vec<u32> = graph.node_ids().map(|v| dense[state.block_of(v)]).collect();

    let total_price: f64 = devices.iter().map(|d| d.price).sum();
    let feasible = devices
        .iter()
        .zip(&usages)
        .all(|(d, &u)| d.device.constraints(delta).fits(u.size, u.terminals));
    Ok(HeteroOutcome { assignment, devices, usages, total_price, feasible, cut: state.cut_count() })
}

/// The cheapest catalog device fitting `usage`, if any.
fn fits_some(catalog: &[PricedDevice], delta: f64, usage: BlockUsage) -> Option<PricedDevice> {
    catalog.iter().find(|p| p.device.constraints(delta).fits(usage.size, usage.terminals)).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::fit::default_price_list;
    use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    #[test]
    fn hetero_partition_is_valid_and_feasible() {
        let g = window_circuit(&WindowConfig::new("w", 400, 30), 3);
        let out = partition_hetero(&g, &default_price_list(), 0.9, &FpartConfig::default())
            .expect("runs");
        assert!(out.feasible);
        assert_eq!(out.assignment.len(), g.node_count());
        assert_eq!(out.devices.len(), out.usages.len());
        // Sizes conserve.
        let total: u64 = out.usages.iter().map(|u| u.size).sum();
        assert_eq!(total, g.total_size());
        // Every block fits its own device.
        for (d, u) in out.devices.iter().zip(&out.usages) {
            assert!(d.device.constraints(0.9).fits(u.size, u.terminals));
        }
        // The price adds up.
        let sum: f64 = out.devices.iter().map(|d| d.price).sum();
        assert!((sum - out.total_price).abs() < 1e-9);
    }

    #[test]
    fn hetero_beats_or_ties_single_biggest_device_cost() {
        let p = find_profile("s9234").expect("known circuit");
        let g = synthesize_mcnc(p, Technology::Xc3000);
        let catalog = default_price_list();
        let out = partition_hetero(&g, &catalog, 0.9, &FpartConfig::default()).expect("runs");
        assert!(out.feasible);
        // Homogeneous XC3090 alternative.
        let xc3090 =
            catalog.iter().find(|d| d.device == fpart_device::Device::XC3090).expect("catalog");
        let homogeneous = crate::partition(
            &g,
            fpart_device::Device::XC3090.constraints(0.9),
            &FpartConfig::default(),
        )
        .expect("runs");
        let homogeneous_cost = xc3090.price * homogeneous.device_count as f64;
        assert!(
            out.total_price <= homogeneous_cost,
            "hetero {} vs homogeneous {homogeneous_cost}",
            out.total_price
        );
    }

    #[test]
    fn mixes_device_types_when_profitable() {
        // A circuit sized so one big device plus one small one is the
        // natural split.
        let g = window_circuit(&WindowConfig::new("w", 350, 24), 5);
        let out = partition_hetero(&g, &default_price_list(), 0.9, &FpartConfig::default())
            .expect("runs");
        assert!(out.feasible);
        assert!(out.device_count() >= 2);
        // (Type mix depends on the instance; just verify the accessor.)
        assert!(out.distinct_devices() >= 1);
    }

    #[test]
    fn oversized_node_rejected() {
        let mut b = fpart_hypergraph::HypergraphBuilder::new();
        let x = b.add_node("x", 1000);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let err =
            partition_hetero(&g, &default_price_list(), 0.9, &FpartConfig::default()).unwrap_err();
        assert!(matches!(err, PartitionError::OversizedNode { .. }));
    }

    #[test]
    fn tiny_circuit_uses_one_cheap_device() {
        let g = window_circuit(&WindowConfig::new("w", 20, 4), 1);
        let out = partition_hetero(&g, &default_price_list(), 1.0, &FpartConfig::default())
            .expect("runs");
        assert_eq!(out.device_count(), 1);
        assert_eq!(out.devices[0].device, fpart_device::Device::XC2064);
    }
}
