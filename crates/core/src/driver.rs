//! The FPART driver: Algorithm 1 of the paper.
//!
//! The circuit starts as one big remainder block. Each iteration peels off
//! one device-sized block via the constructive bipartition (§3.2), then
//! runs the improvement schedule of §3.1:
//!
//! 1. `Improve(R_k, P_k)` between the two lately partitioned blocks;
//! 2. when `M ≤ N_small`, `Improve` over *all* blocks;
//! 3. `Improve(P_MIN_size, R_k)`, `Improve(P_MIN_IO, R_k)`,
//!    `Improve(P_MIN_F, R_k)` — pulling the remainder's content into the
//!    smallest, the fewest-I/O, and the most-free-space block;
//! 4. at `k = M` (and `M ≤ N_small`), a final `Improve(P_i, R_k)` sweep
//!    over every block.
//!
//! Iterations stop as soon as the remainder meets the device constraints.

use std::cmp::Reverse;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use fpart_device::{lower_bound, BlockUsage, DeviceConstraints};
use fpart_hypergraph::{Hypergraph, NodeId};

use crate::budget::{BudgetTracker, Completion};
use crate::config::FpartConfig;
use crate::cost::{classify, CostEvaluator};
use crate::engine::{improve_metered, ImproveContext, ImproveStats};
use crate::initial::bipartition_remainder;
use crate::obs::{Counter, Metrics, Observer};
use crate::state::PartitionState;
use crate::trace::{ImproveKind, Trace, TraceEvent};

/// An error preventing partitioning from starting or finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// A single node is larger than the device: no partition can exist.
    OversizedNode {
        /// The offending node.
        node: NodeId,
        /// Its size.
        size: u32,
        /// The device size limit.
        s_max: u64,
    },
    /// The driver hit its iteration safety valve without the remainder
    /// ever meeting the constraints (I/O-infeasible circuits can do this).
    IterationLimit {
        /// Iterations executed before giving up.
        iterations: usize,
    },
    /// A search parameter is invalid (e.g. zero restarts or threads),
    /// detected up front instead of relying on downstream clamping.
    InvalidConfig {
        /// What is wrong, in plain words.
        what: &'static str,
    },
    /// Every restart of a multi-run search panicked; the first panic is
    /// reported (single restart survivors always win over panics).
    RestartPanicked {
        /// Restart index of the first panic.
        restart: usize,
        /// Recovered panic message.
        message: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::OversizedNode { node, size, s_max } => {
                write!(f, "node {node:?} has size {size}, larger than the device capacity {s_max}")
            }
            PartitionError::IterationLimit { iterations } => {
                write!(f, "no feasible partition found within {iterations} peeling iterations")
            }
            PartitionError::InvalidConfig { what } => {
                write!(f, "invalid configuration: {what}")
            }
            PartitionError::RestartPanicked { restart, message } => {
                write!(f, "every restart failed; restart {restart} panicked: {message}")
            }
        }
    }
}

impl Error for PartitionError {}

/// Per-block summary of a finished partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockReport {
    /// Block size `S_i` in technology cells.
    pub size: u64,
    /// Terminal (IOB) count `T_i`.
    pub terminals: usize,
    /// External primary-I/O count `T_i^E`.
    pub externals: usize,
    /// Whether the block meets the device constraints.
    pub feasible: bool,
}

/// Result of a partitioning run.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// Final block index per node (dense, empty blocks removed).
    pub assignment: Vec<u32>,
    /// Per-block reports, indexed by block.
    pub blocks: Vec<BlockReport>,
    /// Number of devices used (`k` in the paper's tables).
    pub device_count: usize,
    /// Theoretical lower bound `M`.
    pub lower_bound: usize,
    /// Whether every block meets the constraints.
    pub feasible: bool,
    /// Nets spanning more than one block.
    pub cut: usize,
    /// Peeling iterations executed.
    pub iterations: usize,
    /// `Improve(...)` calls executed.
    pub improve_calls: usize,
    /// Total cell moves retained.
    pub total_moves: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Recorded trace (empty unless requested).
    pub trace: Trace,
    /// Engine metrics of the run (all zero unless recording was enabled
    /// via [`partition_observed`] or [`partition_restarts_observed`]).
    pub metrics: Metrics,
    /// How the run ended: [`Completion::Complete`] for a natural finish,
    /// otherwise the budget limit or degradation that cut it short (the
    /// outcome is then the best solution seen before the stop).
    pub completion: Completion,
}

impl PartitionOutcome {
    /// Occupancy points of all blocks (the paper's Figure 2 view).
    #[must_use]
    pub fn usages(&self) -> Vec<BlockUsage> {
        self.blocks.iter().map(|b| BlockUsage::new(b.size, b.terminals)).collect()
    }
}

/// Partitions `graph` onto devices with the given constraints using the
/// FPART algorithm.
///
/// # Errors
///
/// Returns [`PartitionError::OversizedNode`] when a node cannot fit any
/// device, and [`PartitionError::IterationLimit`] when the safety valve
/// trips before a feasible partition is reached.
///
/// # Example
///
/// ```
/// use fpart_core::{partition, FpartConfig};
/// use fpart_device::Device;
/// use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let (graph, _) = clustered_circuit(&ClusteredConfig::new("demo", 4, 30), 1);
/// let constraints = Device::XC3020.constraints(0.9);
/// let outcome = partition(&graph, constraints, &FpartConfig::default())?;
/// assert!(outcome.feasible);
/// assert!(outcome.device_count >= outcome.lower_bound);
/// # Ok(())
/// # }
/// ```
pub fn partition(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
) -> Result<PartitionOutcome, PartitionError> {
    partition_traced(graph, constraints, config, false)
}

/// Runs [`partition`] `restarts` times with consecutive seed offsets —
/// optionally across `threads` scoped worker threads — and returns the
/// best outcome: feasible over infeasible, then fewest devices, then
/// smallest cut, ties broken by the lowest restart index.
///
/// The reduction is performed over the completed runs in restart order,
/// so the result is **bit-identical for every thread count**. Seed
/// diversity only matters for configurations with randomized choices
/// (e.g. `use_constructive_initial: false`); under the fully
/// deterministic default configuration all restarts coincide and the
/// first one wins.
///
/// Restarts are panic-isolated: a restart that panics (a bug, or an
/// injected fault) is dropped and the survivors still reduce in restart
/// order; the search only errors when *every* restart fails. A search
/// that lost restarts reports [`Completion::Degraded`] (or worse) on the
/// winning outcome.
///
/// # Errors
///
/// Returns [`PartitionError::InvalidConfig`] when `restarts` or
/// `threads` is zero, the first restart's typed error when every restart
/// fails, and [`PartitionError::RestartPanicked`] when every restart
/// panicked.
pub fn partition_restarts(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    restarts: usize,
    threads: usize,
) -> Result<PartitionOutcome, PartitionError> {
    search_restarts(restarts, threads, &|i| {
        let cfg = restart_config(config, i);
        partition(graph, constraints, &cfg)
    })
}

/// The panic-isolated multi-run search shared by [`partition_restarts`]
/// and the multilevel variant: run `restarts` jobs across `threads`,
/// drop panicked runs, reduce the survivors in restart order, degrade
/// the completion when any restart was lost.
pub(crate) fn search_restarts(
    restarts: usize,
    threads: usize,
    job: &(dyn Fn(usize) -> Result<PartitionOutcome, PartitionError> + Sync),
) -> Result<PartitionOutcome, PartitionError> {
    validate_search(restarts, threads)?;
    let results = crate::parallel::run_indexed_caught(restarts, threads, job);
    let mut outcomes = Vec::with_capacity(results.len());
    let mut panics = Vec::new();
    for result in results {
        match result {
            Ok(outcome) => outcomes.push(outcome),
            Err(panic) => panics.push(panic),
        }
    }
    if outcomes.is_empty() {
        let first = panics.into_iter().next().expect("at least one restart executes");
        return Err(PartitionError::RestartPanicked {
            restart: first.index,
            message: first.message,
        });
    }
    let lost_restarts = !panics.is_empty();
    reduce_outcomes(outcomes).map(|mut outcome| {
        if lost_restarts {
            outcome.completion = outcome.completion.worst(Completion::Degraded);
        }
        outcome
    })
}

/// Rejects zero restart/thread counts up front with a typed error
/// (shared with the multilevel search).
pub(crate) fn validate_search(restarts: usize, threads: usize) -> Result<(), PartitionError> {
    if restarts == 0 {
        return Err(PartitionError::InvalidConfig { what: "restarts must be at least 1" });
    }
    if threads == 0 {
        return Err(PartitionError::InvalidConfig { what: "threads must be at least 1" });
    }
    Ok(())
}

/// The configuration restart `i` runs under: a diversified seed, and the
/// fault plan only if it targets this restart.
pub(crate) fn restart_config(config: &FpartConfig, i: usize) -> FpartConfig {
    FpartConfig {
        seed: config.seed.wrapping_add(i as u64),
        fault_plan: config.fault_plan.as_ref().and_then(|p| p.for_restart(i)),
        ..config.clone()
    }
}

/// Picks the best outcome from completed restarts, in restart order:
/// feasible over infeasible, then fewest devices, then smallest cut,
/// ties broken by the lowest restart index. Errors only surface when
/// *every* restart failed (the first restart's error wins).
pub(crate) fn reduce_outcomes(
    results: Vec<Result<PartitionOutcome, PartitionError>>,
) -> Result<PartitionOutcome, PartitionError> {
    let mut best: Option<PartitionOutcome> = None;
    let mut first_error: Option<PartitionError> = None;
    for result in results {
        match result {
            Ok(outcome) => {
                let better = match &best {
                    None => true,
                    Some(b) => {
                        (outcome.feasible, Reverse(outcome.device_count), Reverse(outcome.cut))
                            > (b.feasible, Reverse(b.device_count), Reverse(b.cut))
                    }
                };
                if better {
                    best = Some(outcome);
                }
            }
            Err(e) => {
                first_error.get_or_insert(e);
            }
        }
    }
    match best {
        Some(outcome) => Ok(outcome),
        None => Err(first_error.expect("at least one restart executes")),
    }
}

/// Per-restart observability report of a [`partition_restarts_observed`]
/// search.
#[derive(Debug, Clone)]
pub struct RestartsReport {
    /// The winning outcome (same reduction as [`partition_restarts`];
    /// its own [`PartitionOutcome::metrics`] belong to the winning
    /// restart alone).
    pub outcome: PartitionOutcome,
    /// All restarts' metrics merged in restart-index order — identical
    /// for every thread count.
    pub totals: Metrics,
    /// Each restart's metrics, indexed by restart. A restart that
    /// returned a typed error keeps the counts it accumulated before
    /// erroring out; a restart lost to a panic is represented by a
    /// synthesized registry with one `failed_restarts` count (so the
    /// totals stay the field-wise per-restart sums).
    pub per_restart: Vec<Metrics>,
    /// How the search ended: the winning restart's own completion,
    /// degraded further when any restart was lost to a panic.
    pub completion: Completion,
    /// Restarts lost to isolated panics, in restart-index order.
    pub failed: Vec<FailedRestart>,
}

/// A restart that panicked and was dropped from the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedRestart {
    /// Restart index of the lost run.
    pub restart: usize,
    /// Recovered panic payload (message).
    pub message: String,
}

/// [`partition_restarts`] with per-restart metrics recording and a
/// deterministic aggregate.
///
/// Every restart runs with an enabled [`Metrics`] registry; the children
/// are merged into [`RestartsReport::totals`] in restart-index order, so
/// both the winning outcome **and** the aggregated metrics are
/// bit-identical at every thread count. Counter totals equal the field-
/// wise sum over [`RestartsReport::per_restart`].
///
/// # Errors
///
/// Same contract as [`partition_restarts`]: a typed config error for
/// zero restart/thread counts, otherwise an error only when every
/// restart fails.
pub fn partition_restarts_observed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    restarts: usize,
    threads: usize,
) -> Result<RestartsReport, PartitionError> {
    search_restarts_observed(restarts, threads, &|i| {
        observed_restart_job(graph, constraints, config, i)
    })
}

/// Runs restart `i` of the flat observed search exactly as
/// [`partition_restarts_observed`] would: diversified config, enabled
/// metrics registry, restart span. Shared with the checkpointing search
/// so a resumed run replays the identical per-restart computation.
pub(crate) fn observed_restart_job(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    i: usize,
) -> (Result<PartitionOutcome, PartitionError>, Metrics) {
    let cfg = restart_config(config, i);
    let mut obs = Observer::new(Metrics::enabled(), None);
    obs.metrics.set_span_lane(i as u32);
    obs.metrics.span_open(crate::obs::SpanKind::Restart, 0);
    let result = partition_observed(graph, constraints, &cfg, &mut obs);
    let mut metrics = obs.metrics;
    metrics.bump(Counter::Runs);
    let span_stats = match &result {
        Ok(outcome) => crate::obs::SpanStats {
            nodes: graph.node_count() as u64,
            nets: graph.net_count() as u64,
            moves: outcome.total_moves as u64,
            ..crate::obs::SpanStats::default()
        },
        Err(_) => crate::obs::SpanStats::default(),
    };
    metrics.span_close(span_stats);
    (result, metrics)
}

/// The observed counterpart of [`search_restarts`]: each job returns its
/// own metrics registry; totals merge in restart-index order so the
/// aggregate is bit-identical at every thread count.
pub(crate) fn search_restarts_observed(
    restarts: usize,
    threads: usize,
    job: &(dyn Fn(usize) -> (Result<PartitionOutcome, PartitionError>, Metrics) + Sync),
) -> Result<RestartsReport, PartitionError> {
    validate_search(restarts, threads)?;
    let results = crate::parallel::run_indexed_caught(restarts, threads, job);

    let mut totals = Metrics::enabled();
    let mut per_restart = Vec::with_capacity(results.len());
    let mut outcomes = Vec::with_capacity(results.len());
    let mut failed = Vec::new();
    for result in results {
        match result {
            Ok((result, metrics)) => {
                totals.merge(&metrics);
                per_restart.push(metrics);
                outcomes.push(result);
            }
            Err(panic) => {
                // Synthesize the lost restart's registry so the totals
                // keep equalling the field-wise per-restart sums.
                let mut metrics = Metrics::enabled();
                metrics.bump(Counter::FailedRestarts);
                totals.merge(&metrics);
                per_restart.push(metrics);
                failed.push(FailedRestart { restart: panic.index, message: panic.message });
            }
        }
    }
    if outcomes.is_empty() {
        let first = failed.into_iter().next().expect("at least one restart executes");
        return Err(PartitionError::RestartPanicked {
            restart: first.restart,
            message: first.message,
        });
    }
    reduce_outcomes(outcomes).map(|outcome| {
        let mut completion = outcome.completion;
        if !failed.is_empty() {
            completion = completion.worst(Completion::Degraded);
        }
        RestartsReport { outcome, totals, per_restart, completion, failed }
    })
}

/// Like [`partition`], optionally recording a full execution trace.
///
/// # Errors
///
/// See [`partition`].
pub fn partition_traced(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    trace: bool,
) -> Result<PartitionOutcome, PartitionError> {
    let mut trace = if trace { Trace::enabled() } else { Trace::disabled() };
    let result = {
        let mut obs = Observer::new(Metrics::disabled(), Some(&mut trace));
        partition_observed(graph, constraints, config, &mut obs)
    };
    result.map(|mut outcome| {
        outcome.trace = trace;
        outcome
    })
}

/// Like [`partition`], recording metrics and driver events into the
/// given [`Observer`] — the most general entry point; [`partition`] and
/// [`partition_traced`] are thin wrappers over it.
///
/// The observer never influences the search: for any observer
/// configuration the returned partition is bit-identical to
/// [`partition`]'s (the `observability` integration suite proves this by
/// property test). On success the outcome carries a copy of the
/// observer's final metrics.
///
/// # Errors
///
/// See [`partition`]. On error the observer keeps whatever metrics and
/// events accumulated before the failure.
pub fn partition_observed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    obs: &mut Observer<'_>,
) -> Result<PartitionOutcome, PartitionError> {
    config.validate();
    // Execution budget for this run: a direct call counts as restart 0
    // for fault-plan targeting. Unlimited budgets cost one branch per
    // pass/peel boundary and never read the clock.
    let tracker = BudgetTracker::new(
        &config.budget,
        config.fault_plan.as_ref().and_then(|plan| plan.for_restart(0)),
    );
    partition_with_tracker(graph, constraints, config, obs, &tracker)
}

/// [`partition_observed`] driven by a caller-owned [`BudgetTracker`], so
/// an enclosing flow (the multilevel V-cycle) can account the peeling
/// driver's passes against its own overall budget.
pub(crate) fn partition_with_tracker(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    obs: &mut Observer<'_>,
    tracker: &BudgetTracker,
) -> Result<PartitionOutcome, PartitionError> {
    let start = Instant::now();

    if graph.node_count() == 0 {
        return Ok(PartitionOutcome {
            assignment: Vec::new(),
            blocks: Vec::new(),
            device_count: 0,
            lower_bound: 0,
            feasible: true,
            cut: 0,
            iterations: 0,
            improve_calls: 0,
            total_moves: 0,
            elapsed: start.elapsed(),
            trace: Trace::disabled(),
            metrics: obs.metrics.clone(),
            completion: Completion::Complete,
        });
    }
    for v in graph.node_ids() {
        let size = graph.node_size(v);
        if u64::from(size) > constraints.s_max {
            return Err(PartitionError::OversizedNode { node: v, size, s_max: constraints.s_max });
        }
    }

    let m = lower_bound(graph, constraints);
    let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());
    let mut state = PartitionState::single_block(graph);
    let mut iterations = 0usize;
    let mut improve_calls = 0usize;
    let mut total_moves = 0usize;
    let iteration_cap = m * config.max_iterations_factor + 32;

    // The loop runs until the whole partition is feasible. Normally the
    // remainder is the only violator and becomes feasible last; but an
    // improvement pass may empty the remainder into a block that then
    // violates the I/O constraint — per the paper's definition, *the
    // violating subset is the remainder*, so with `repair_violators` it
    // gets re-designated and split further (the greedy baseline instead
    // stops when the original remainder fits).
    while let Some(violator) = next_remainder(&state, &evaluator, config) {
        // Peel boundary: a stopped budget ends the loop cleanly; the
        // state already holds the best solution of every improve call,
        // so whatever has been peeled so far is returned as-is.
        if tracker.check() {
            break;
        }
        let remainder = violator;
        iterations += 1;
        if iterations > iteration_cap {
            return Err(PartitionError::IterationLimit { iterations });
        }
        obs.metrics.bump(Counter::Iterations);
        obs.emit(|| TraceEvent::IterationStart {
            iteration: iterations,
            remainder_size: state.block_size(remainder),
            remainder_terminals: state.block_terminals(remainder),
        });

        let ctx = ImproveContext {
            evaluator: &evaluator,
            config,
            remainder,
            minimum_reached: iterations > m,
            budget: Some(tracker),
        };

        let p = state.add_block();
        obs.metrics.span_open(crate::obs::SpanKind::Bipartition, 0);
        let method = bipartition_remainder(&mut state, remainder, p, &ctx);
        obs.metrics.bump(Counter::Bipartitions);
        obs.metrics.span_close(crate::obs::SpanStats {
            nodes: state.block_size(p),
            ..crate::obs::SpanStats::default()
        });
        obs.emit(|| TraceEvent::Bipartition {
            iteration: iterations,
            method,
            peeled_size: state.block_size(p),
            peeled_terminals: state.block_terminals(p),
        });

        let mut run = |state: &mut PartitionState<'_>,
                       kind: ImproveKind,
                       blocks: Vec<usize>,
                       obs: &mut Observer<'_>| {
            if blocks.len() < 2 {
                return;
            }
            let started = obs.metrics.start();
            let stats: ImproveStats = improve_metered(state, &blocks, &ctx, &mut obs.metrics);
            obs.metrics.stop_improve(kind, started);
            improve_calls += 1;
            total_moves += stats.moves;
            obs.emit(|| TraceEvent::Improve {
                iteration: iterations,
                kind,
                blocks,
                initial_key: stats.initial_key,
                final_key: stats.final_key,
                passes: stats.passes,
                moves: stats.moves,
                restarts: stats.restarts,
            });
        };

        // 1. Two lately partitioned blocks.
        run(&mut state, ImproveKind::LastPair, vec![remainder, p], obs);

        if config.use_improvement_schedule {
            // 2. All blocks together (small-M group only).
            if m <= config.n_small && state.block_count() >= 3 {
                let all: Vec<usize> = (0..state.block_count()).collect();
                run(&mut state, ImproveKind::AllBlocks, all, obs);
            }

            // 3. Remainder vs the smallest / fewest-I/O / most-free block.
            let mut recent: Option<usize> = Some(p);
            for (kind, pick) in [
                (ImproveKind::MinSize, select_min_size(&state, remainder)),
                (ImproveKind::MinIo, select_min_io(&state, remainder)),
                (ImproveKind::MaxFree, select_max_free(&state, remainder, constraints, config)),
            ] {
                let Some(block) = pick else { continue };
                // Skip a pass that would repeat the immediately preceding
                // pair — it just converged.
                if recent == Some(block) {
                    continue;
                }
                run(&mut state, kind, vec![block, remainder], obs);
                recent = Some(block);
            }

            // 4. Final pairwise sweep when the lower bound is reached.
            if iterations == m && m <= config.n_small {
                for b in 0..state.block_count() {
                    if b != remainder {
                        run(&mut state, ImproveKind::FinalSweep, vec![b, remainder], obs);
                    }
                }
            }
        }

        obs.emit(|| {
            let k = state.block_count();
            let feasible = (0..k)
                .filter(|&b| constraints.fits(state.block_size(b), state.block_terminals(b)))
                .count();
            TraceEvent::Solution {
                iteration: iterations,
                class: classify(feasible, k),
                blocks: (0..k).map(|b| state.block_usage(b)).collect(),
            }
        });

        // Progress heartbeat (throttled; a disabled heartbeat is one
        // branch, no clock read). `level` is the peeling iteration.
        if let Some(elapsed) = obs.heartbeat.due() {
            let snapshot = tracker.remaining();
            let passes = obs.metrics.get(Counter::Passes);
            let cut = state.cut_count();
            obs.emit(|| TraceEvent::Progress {
                phase: crate::obs::SpanKind::Initial,
                level: iterations,
                passes,
                moves: total_moves as u64,
                cut: Some(cut),
                elapsed_ms: elapsed.as_millis() as u64,
                deadline_remaining_ms: snapshot.deadline_remaining.map(|d| d.as_millis() as u64),
                passes_remaining: snapshot.passes_remaining,
            });
        }
    }

    if tracker.stopped() {
        obs.metrics.bump(Counter::BudgetStops);
    }
    obs.metrics.add(Counter::FaultsInjected, tracker.faults_injected());
    Ok(assemble_outcome(
        graph,
        &state,
        constraints,
        m,
        iterations,
        improve_calls,
        total_moves,
        start.elapsed(),
        Trace::disabled(),
        obs.metrics.clone(),
        tracker.completion(),
    ))
}

/// Picks the block to split next: with `repair_violators`, the non-empty
/// block with the largest infeasibility distance; otherwise only the
/// original remainder (block 0) while it violates. `None` ends the loop.
fn next_remainder(
    state: &PartitionState<'_>,
    evaluator: &CostEvaluator,
    config: &FpartConfig,
) -> Option<usize> {
    let constraints = evaluator.constraints();
    if !config.repair_violators {
        let fits = constraints.fits(state.block_size(0), state.block_terminals(0));
        return (!fits && state.block_size(0) > 0).then_some(0);
    }
    (0..state.block_count())
        .filter(|&b| {
            state.block_size(b) > 0
                && !constraints.fits(state.block_size(b), state.block_terminals(b))
        })
        .max_by(|&a, &b| {
            let da = evaluator.block_distance(state.block_size(a), state.block_terminals(a));
            let db = evaluator.block_distance(state.block_size(b), state.block_terminals(b));
            da.total_cmp(&db).then_with(|| b.cmp(&a))
        })
}

/// The non-remainder, non-empty block with the smallest size.
fn select_min_size(state: &PartitionState<'_>, remainder: usize) -> Option<usize> {
    (0..state.block_count())
        .filter(|&b| b != remainder && state.block_size(b) > 0)
        .min_by_key(|&b| (state.block_size(b), b))
}

/// The non-remainder, non-empty block with the fewest terminals.
fn select_min_io(state: &PartitionState<'_>, remainder: usize) -> Option<usize> {
    (0..state.block_count())
        .filter(|&b| b != remainder && state.block_size(b) > 0)
        .min_by_key(|&b| (state.block_terminals(b), b))
}

/// The non-remainder, non-empty block with the largest free space
/// `F = σ₁(S_MAX−S)/S_MAX + σ₂(T_MAX−T)/T_MAX`.
fn select_max_free(
    state: &PartitionState<'_>,
    remainder: usize,
    constraints: DeviceConstraints,
    config: &FpartConfig,
) -> Option<usize> {
    (0..state.block_count()).filter(|&b| b != remainder && state.block_size(b) > 0).max_by(
        |&a, &b| {
            let fa = constraints.free_space(state.block_usage(a), config.sigma1, config.sigma2);
            let fb = constraints.free_space(state.block_usage(b), config.sigma1, config.sigma2);
            fa.total_cmp(&fb).then_with(|| b.cmp(&a))
        },
    )
}

/// Compacts empty blocks out and assembles the outcome (shared with the
/// multilevel mode).
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_outcome(
    graph: &Hypergraph,
    state: &PartitionState<'_>,
    constraints: DeviceConstraints,
    m: usize,
    iterations: usize,
    improve_calls: usize,
    total_moves: usize,
    elapsed: Duration,
    trace: Trace,
    metrics: Metrics,
    completion: Completion,
) -> PartitionOutcome {
    let k = state.block_count();
    let mut dense = vec![u32::MAX; k];
    let mut blocks = Vec::new();
    for (b, slot) in dense.iter_mut().enumerate() {
        if state.block_size(b) == 0 {
            continue;
        }
        *slot = blocks.len() as u32;
        blocks.push(BlockReport {
            size: state.block_size(b),
            terminals: state.block_terminals(b),
            externals: state.block_externals(b),
            feasible: constraints.fits(state.block_size(b), state.block_terminals(b)),
        });
    }
    let assignment: Vec<u32> = graph.node_ids().map(|v| dense[state.block_of(v)]).collect();
    let feasible =
        !blocks.is_empty() && blocks.iter().all(|b| b.feasible) || graph.node_count() == 0;
    PartitionOutcome {
        device_count: blocks.len(),
        assignment,
        blocks,
        lower_bound: m,
        feasible,
        cut: state.cut_count(),
        iterations,
        improve_calls,
        total_moves,
        elapsed,
        trace,
        metrics,
        completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::Device;
    use fpart_hypergraph::gen::{clustered_circuit, window_circuit, ClusteredConfig, WindowConfig};
    use fpart_hypergraph::HypergraphBuilder;

    fn check_outcome(graph: &Hypergraph, outcome: &PartitionOutcome) {
        assert_eq!(outcome.assignment.len(), graph.node_count());
        // Every node lands in a real block.
        for &b in &outcome.assignment {
            assert!((b as usize) < outcome.device_count);
        }
        // Block reports add up.
        let total: u64 = outcome.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total, graph.total_size());
        assert!(outcome.device_count >= outcome.lower_bound || !outcome.feasible);
    }

    #[test]
    fn whole_circuit_fits_one_device() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 10), 1);
        let constraints = DeviceConstraints::new(1000, 1000);
        let outcome = partition(&g, constraints, &FpartConfig::default()).unwrap();
        assert_eq!(outcome.device_count, 1);
        assert_eq!(outcome.iterations, 0);
        assert!(outcome.feasible);
        check_outcome(&g, &outcome);
    }

    #[test]
    fn clustered_circuit_partitions_to_planted_count() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 4, 25), 2);
        // Device fits one planted cluster comfortably.
        let constraints = DeviceConstraints::new(30, 120);
        let outcome = partition(&g, constraints, &FpartConfig::default()).unwrap();
        assert!(outcome.feasible, "outcome: {outcome:?}");
        assert!(outcome.device_count >= 4); // 100 cells / 30
        assert!(outcome.device_count <= 6, "used {} devices", outcome.device_count);
        check_outcome(&g, &outcome);
    }

    #[test]
    fn window_circuit_meets_constraints() {
        let g = window_circuit(&WindowConfig::new("w", 300, 24), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let outcome = partition(&g, constraints, &FpartConfig::default()).unwrap();
        assert!(outcome.feasible);
        for b in &outcome.blocks {
            assert!(b.size <= constraints.s_max);
            assert!(b.terminals <= constraints.t_max);
        }
        check_outcome(&g, &outcome);
    }

    #[test]
    fn oversized_node_is_rejected() {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 100);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let err =
            partition(&g, DeviceConstraints::new(50, 10), &FpartConfig::default()).unwrap_err();
        assert!(matches!(err, PartitionError::OversizedNode { size: 100, .. }));
    }

    #[test]
    fn empty_circuit_is_trivially_feasible() {
        let g = HypergraphBuilder::new().finish().unwrap();
        let outcome =
            partition(&g, DeviceConstraints::new(10, 10), &FpartConfig::default()).unwrap();
        assert_eq!(outcome.device_count, 0);
        assert!(outcome.feasible);
    }

    #[test]
    fn traced_run_records_schedule() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 20), 4);
        let constraints = DeviceConstraints::new(25, 100);
        let outcome = partition_traced(&g, constraints, &FpartConfig::default(), true).unwrap();
        assert!(outcome.trace.is_enabled());
        assert!(!outcome.trace.events().is_empty());
        // At least one iteration start and one improve per iteration.
        let starts = outcome
            .trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::IterationStart { .. }))
            .count();
        assert_eq!(starts, outcome.iterations);
        assert!(outcome.trace.improve_events().count() >= outcome.iterations);
    }

    #[test]
    fn untraced_run_records_nothing() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 15), 4);
        let outcome =
            partition(&g, DeviceConstraints::new(20, 100), &FpartConfig::default()).unwrap();
        assert!(outcome.trace.events().is_empty());
    }

    #[test]
    fn classical_config_also_terminates() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 3, 20), 9);
        let outcome =
            partition(&g, DeviceConstraints::new(25, 100), &FpartConfig::classical()).unwrap();
        assert!(outcome.feasible);
        check_outcome(&g, &outcome);
    }

    #[test]
    fn determinism_same_inputs_same_outcome() {
        let g = window_circuit(&WindowConfig::new("w", 200, 20), 77);
        let constraints = DeviceConstraints::new(40, 60);
        let a = partition(&g, constraints, &FpartConfig::default()).unwrap();
        let b = partition(&g, constraints, &FpartConfig::default()).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.device_count, b.device_count);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn restarts_are_thread_count_invariant() {
        let g = window_circuit(&WindowConfig::new("w", 180, 18), 5);
        let constraints = DeviceConstraints::new(35, 60);
        let config = FpartConfig::default();
        let sequential = partition_restarts(&g, constraints, &config, 4, 1).unwrap();
        for threads in [2, 4, 8] {
            let parallel = partition_restarts(&g, constraints, &config, 4, threads).unwrap();
            assert_eq!(sequential.assignment, parallel.assignment, "threads={threads}");
            assert_eq!(sequential.device_count, parallel.device_count);
            assert_eq!(sequential.cut, parallel.cut);
        }
    }

    #[test]
    fn restarts_never_worse_than_single_run() {
        let g = window_circuit(&WindowConfig::new("w", 180, 18), 5);
        let constraints = DeviceConstraints::new(35, 60);
        let config = FpartConfig::default();
        let single = partition(&g, constraints, &config).unwrap();
        let multi = partition_restarts(&g, constraints, &config, 3, 2).unwrap();
        // The restart at offset 0 reproduces the single run, so the
        // reduced outcome can only match or beat it.
        assert!(
            (multi.feasible, Reverse(multi.device_count), Reverse(multi.cut))
                >= (single.feasible, Reverse(single.device_count), Reverse(single.cut))
        );
    }
}
