//! Algorithm configuration: every tunable named in the paper plus
//! ablation switches and the paper's §5 future-work options.

/// What a cell-move gain measures (paper §3.7 and §5).
///
/// The paper uses the classical cut-net gain and names the I/O-pin gain
/// as future work: "to incorporate the real gain in I/O pin number of a
/// block instead of the gain in number of cut nets into the cell gain of
/// the FM-algorithm. This may more quickly direct the search towards
/// finding solutions respecting the I/O pin constraint."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GainObjective {
    /// Classical FM: +1 per net leaving the cut, −1 per net entering it.
    #[default]
    CutNets,
    /// Future-work variant: the reduction in the two touched blocks'
    /// combined IOB counts (`T_from + T_to`). Terminal-attached nets and
    /// multi-block spans are accounted exactly.
    IoPins,
}

/// Configuration of the FPART partitioner.
///
/// Defaults are the fixed parameter values reported in §4 of the paper:
/// `σ₁ = σ₂ = 0.5`, `N_small = 15`, `λ^S = 0.4`, `λ^T = 0.6`, `λ^R = 0.1`,
/// `ε*_max = ε²_max = 1.05`, `ε*_min = 0.3`, `ε²_min = 0.95`,
/// `D_stack = 4`, 2-level gains.
///
/// The `use_*` flags are ablation switches (all `true` by default); they
/// let the benchmark harness measure how much each of the paper's devices
/// contributes to solution quality.
///
/// # Example
///
/// ```
/// use fpart_core::FpartConfig;
///
/// let config = FpartConfig::default();
/// assert_eq!(config.n_small, 15);
/// assert_eq!(config.stack_depth, 4);
///
/// let ablated = FpartConfig { use_solution_stacks: false, ..FpartConfig::default() };
/// assert!(!ablated.use_solution_stacks);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FpartConfig {
    /// Weight `λ^S` of the size component of the infeasibility distance.
    pub lambda_s: f64,
    /// Weight `λ^T` of the I/O component of the infeasibility distance.
    pub lambda_t: f64,
    /// Weight `λ^R` of the size-deviation penalty `d_k^R`.
    pub lambda_r: f64,
    /// Weight `σ₁` of the size term in the free-space estimate.
    pub sigma1: f64,
    /// Weight `σ₂` of the I/O term in the free-space estimate.
    pub sigma2: f64,
    /// Threshold `N_small`: the all-block improvement pass and the final
    /// pairwise sweep run only when `M ≤ N_small`.
    pub n_small: usize,
    /// Upper feasible-move multiplier: a non-remainder block may grow to
    /// `ε_max · S_MAX` (while `k ≤ M`; above `M` growth stops at `S_MAX`).
    pub eps_max: f64,
    /// Lower feasible-move multiplier for **two-block** passes: a
    /// non-remainder block may not shrink below `ε²_min · S_MAX`
    /// (strict, to bias moves *from* the remainder).
    pub eps_min_two: f64,
    /// Lower feasible-move multiplier for **multi-block** passes
    /// (`ε*_min`, loose).
    pub eps_min_multi: f64,
    /// Depth `D_stack` of each of the two solution stacks.
    pub stack_depth: usize,
    /// Maximum FM passes in one pass series before giving up on
    /// improvement.
    pub max_passes: usize,
    /// Number of gain levels used for tie-breaking (1 = plain FM,
    /// 2 = Krishnamurthy second-level gains — the paper's choice; up to
    /// 4 levels are supported for the higher-level-gain experiments the
    /// paper discusses via \[7\]).
    pub gain_levels: u8,
    /// What the first-level gain measures (paper §5 future work offers
    /// [`GainObjective::IoPins`]; the paper's evaluation uses
    /// [`GainObjective::CutNets`]).
    pub gain_objective: GainObjective,
    /// Paper §5 future work: "reduce time wasted in the infeasible region
    /// by stopping the FM pass if current solution moves farther away
    /// from the feasible region". When set, a pass ends after this many
    /// consecutive moves without improving on the pass-best key.
    pub early_stop_patience: Option<usize>,
    /// Ablation: use the constructive initial bipartition of §3.2
    /// (greedy dual-seed merge vs ratio-cut sweep, best-of). When
    /// `false`, the initial peel is a random size-balanced subset — the
    /// paper observes that "randomly created initial partition may lead
    /// to poor results", and this flag lets the harness demonstrate it.
    pub use_constructive_initial: bool,
    /// Ablation: explore restarts from the dual solution stacks (§3.6).
    pub use_solution_stacks: bool,
    /// Ablation: use the infeasibility-distance cost (§3.3); when `false`
    /// solutions are ranked by cut size alone, as in the k-way.x cost
    /// function the paper improves upon.
    pub use_infeasibility_cost: bool,
    /// Ablation: include the external-I/O balancing factor `d_k^E` (§3.4).
    pub use_external_balance: bool,
    /// Ablation: run the extra improvement schedule of §3.1 (all-block
    /// pass, remainder vs min-size/min-IO/max-free-space, final pairwise
    /// sweep). When `false` only the two-lately-partitioned-blocks pass
    /// runs, which is the k-way.x schedule.
    pub use_improvement_schedule: bool,
    /// Ablation: asymmetric ε move regions (§3.5). When `false`, the
    /// classical symmetric FM balance window `±5 %` applies to every
    /// block including the remainder.
    pub use_move_regions: bool,
    /// When an improvement pass leaves a non-remainder block violating
    /// the constraints (it absorbed the remainder, say), re-designate the
    /// violator as the remainder and keep splitting. The paper defines
    /// the remainder as *the violating subset*, so this is on for FPART;
    /// the greedy k-way.x baseline stops as soon as the original
    /// remainder fits, reporting whatever feasibility it achieved.
    pub repair_violators: bool,
    /// Safety valve: the driver aborts after `M · max_iterations_factor +
    /// 32` peeling iterations (a correct run needs at most a few more
    /// than `M`).
    pub max_iterations_factor: usize,
    /// Seed for the (rare) randomized tie-breaks in initial partitioning.
    pub seed: u64,
    /// Execution budget (deadline, pass/move caps, cancel token) checked
    /// cooperatively at pass and peel boundaries. The default is
    /// unlimited and costs one branch per boundary.
    pub budget: crate::budget::RunBudget,
    /// Deterministic fault-injection schedule for robustness testing.
    /// `None` (the default) compiles down to a no-op branch.
    pub fault_plan: Option<crate::budget::FaultPlan>,
}

impl Default for FpartConfig {
    fn default() -> Self {
        FpartConfig {
            lambda_s: 0.4,
            lambda_t: 0.6,
            lambda_r: 0.1,
            sigma1: 0.5,
            sigma2: 0.5,
            n_small: 15,
            eps_max: 1.05,
            eps_min_two: 0.95,
            eps_min_multi: 0.3,
            stack_depth: 4,
            max_passes: 8,
            gain_levels: 2,
            gain_objective: GainObjective::CutNets,
            early_stop_patience: None,
            use_constructive_initial: true,
            use_solution_stacks: true,
            use_infeasibility_cost: true,
            use_external_balance: true,
            use_improvement_schedule: true,
            use_move_regions: true,
            repair_violators: true,
            max_iterations_factor: 4,
            seed: 0xF9A7,
            budget: crate::budget::RunBudget::default(),
            fault_plan: None,
        }
    }
}

impl FpartConfig {
    /// Returns the paper's fixed parameters (same as [`Default`]).
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// A configuration with every FPART-specific device disabled — the
    /// closest match to the plain recursive-FM `(p,p)` baseline while
    /// still using this crate's engine: one-level gains, no solution
    /// stacks, no improvement schedule beyond the last-pair pass, and
    /// solutions ranked by `(feasible blocks, cut)` only — the "net
    /// number" cost of k-way.x. The move regions stay on: the recursive
    /// paradigm itself needs feasible peeled blocks, in k-way.x as here.
    #[must_use]
    pub fn classical() -> Self {
        FpartConfig {
            gain_levels: 1,
            use_solution_stacks: false,
            use_infeasibility_cost: false,
            use_external_balance: false,
            use_improvement_schedule: false,
            repair_violators: false,
            ..Self::default()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if weights are negative, `ε` windows are inverted, the stack
    /// depth is zero while stacks are enabled, or `gain_levels` is not 1
    /// or 2.
    pub fn validate(&self) {
        assert!(self.lambda_s >= 0.0 && self.lambda_t >= 0.0 && self.lambda_r >= 0.0);
        assert!(self.sigma1 >= 0.0 && self.sigma2 >= 0.0);
        assert!(self.eps_max >= 1.0, "eps_max must allow at least S_MAX");
        assert!(
            (0.0..=1.0).contains(&self.eps_min_two) && (0.0..=1.0).contains(&self.eps_min_multi),
            "eps_min multipliers must be in [0, 1]"
        );
        assert!(
            !self.use_solution_stacks || self.stack_depth > 0,
            "stack depth must be positive when stacks are enabled"
        );
        assert!(self.max_passes > 0, "need at least one pass");
        assert!((1..=4).contains(&self.gain_levels), "gain levels must be between 1 and 4");
        assert!(
            self.early_stop_patience != Some(0),
            "an early-stop patience of zero would end every pass at once"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_values() {
        let c = FpartConfig::default();
        assert_eq!(c.lambda_s, 0.4);
        assert_eq!(c.lambda_t, 0.6);
        assert_eq!(c.lambda_r, 0.1);
        assert_eq!(c.sigma1, 0.5);
        assert_eq!(c.sigma2, 0.5);
        assert_eq!(c.n_small, 15);
        assert_eq!(c.eps_max, 1.05);
        assert_eq!(c.eps_min_two, 0.95);
        assert_eq!(c.eps_min_multi, 0.3);
        assert_eq!(c.stack_depth, 4);
        assert_eq!(c.gain_levels, 2);
        c.validate();
    }

    #[test]
    fn classical_disables_fpart_devices() {
        let c = FpartConfig::classical();
        assert!(!c.use_solution_stacks);
        assert!(!c.use_infeasibility_cost);
        assert!(!c.use_improvement_schedule);
        assert_eq!(c.gain_levels, 1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn validate_rejects_bad_gain_levels() {
        FpartConfig { gain_levels: 5, ..FpartConfig::default() }.validate();
    }

    #[test]
    fn higher_gain_levels_are_accepted() {
        FpartConfig { gain_levels: 3, ..FpartConfig::default() }.validate();
        FpartConfig { gain_levels: 4, ..FpartConfig::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "stack depth")]
    fn validate_rejects_zero_stack_depth() {
        FpartConfig { stack_depth: 0, ..FpartConfig::default() }.validate();
    }
}
