//! Assignment-file I/O: the plain `node_name block` interchange format
//! the `fpart` CLI emits and verifies. Library users get the same
//! round-trip without reimplementing the parsing.
//!
//! ```text
//! # comments and blank lines are ignored
//! u17 0
//! u18 2
//! ```
//!
//! [`write_assignment_versioned`] prepends a versioned header so
//! downstream flows (the ECO repair loop in particular) can check what
//! they are loading:
//!
//! ```text
//! #%fpart-assignment v1 blocks 3
//! u17 0
//! u18 2
//! ```
//!
//! The header rides on a `#` comment line, so the versioned form stays
//! readable by any legacy `node block` consumer; [`read_assignment`]
//! detects it, validates the version, and cross-checks the declared
//! block count against the body.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use fpart_hypergraph::Hypergraph;

/// An error while reading an assignment file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadAssignmentError {
    /// A line was not `node block`.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A named node does not exist in the graph.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// A node of the graph has no line in the file.
    MissingNode {
        /// Name of the uncovered node.
        name: String,
    },
    /// The reader failed or produced non-UTF-8 data.
    Io {
        /// 1-based line number where reading failed.
        line: usize,
    },
    /// The versioned header declares a format version this build does
    /// not understand.
    UnsupportedVersion {
        /// The declared version.
        version: u32,
    },
    /// The versioned header's declared block count disagrees with the
    /// body (1 + the largest block index seen).
    BlockCountMismatch {
        /// Block count the header declares.
        declared: usize,
        /// Block count the body implies.
        found: usize,
    },
    /// The `#%fpart-assignment` header line is present but malformed.
    MalformedHeader {
        /// 1-based line number of the header (always 1).
        line: usize,
    },
}

impl fmt::Display for ReadAssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadAssignmentError::MalformedLine { line } => {
                write!(f, "line {line}: expected `node block`")
            }
            ReadAssignmentError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node `{name}`")
            }
            ReadAssignmentError::MissingNode { name } => {
                write!(f, "node `{name}` has no assignment")
            }
            ReadAssignmentError::Io { line } => write!(f, "line {line}: read failed"),
            ReadAssignmentError::UnsupportedVersion { version } => {
                write!(f, "unsupported assignment format version {version} (this build reads v{ASSIGNMENT_FORMAT_VERSION})")
            }
            ReadAssignmentError::BlockCountMismatch { declared, found } => {
                write!(f, "header declares {declared} blocks but the body implies {found}")
            }
            ReadAssignmentError::MalformedHeader { line } => {
                write!(f, "line {line}: malformed `#%fpart-assignment` header")
            }
        }
    }
}

impl Error for ReadAssignmentError {}

/// Current version of the versioned assignment header.
pub const ASSIGNMENT_FORMAT_VERSION: u32 = 1;

/// Magic prefix of the versioned assignment header line.
const ASSIGNMENT_MAGIC: &str = "#%fpart-assignment";

/// Writes an assignment with the versioned header
/// (`#%fpart-assignment v1 blocks <k>` followed by `node block` lines).
/// The header is a comment to legacy readers, so the output is still a
/// valid plain assignment file.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `assignment.len() != graph.node_count()` or a block index
/// is not below `blocks`.
pub fn write_assignment_versioned<W: Write>(
    mut writer: W,
    graph: &Hypergraph,
    assignment: &[u32],
    blocks: usize,
) -> std::io::Result<()> {
    assert!(
        assignment.iter().all(|&b| (b as usize) < blocks.max(1)),
        "every block index must be below the declared block count"
    );
    writeln!(writer, "{ASSIGNMENT_MAGIC} v{ASSIGNMENT_FORMAT_VERSION} blocks {blocks}")?;
    write_assignment(writer, graph, assignment)
}

/// Parses the `#%fpart-assignment v<N> blocks <k>` header; `None` when
/// the line is not a header at all.
fn parse_header(line: &str) -> Option<Result<(u32, usize), ReadAssignmentError>> {
    let rest = line.strip_prefix(ASSIGNMENT_MAGIC)?;
    let malformed = Err(ReadAssignmentError::MalformedHeader { line: 1 });
    let mut fields = rest.split_whitespace();
    let (Some(version), Some(kw), Some(blocks), None) =
        (fields.next(), fields.next(), fields.next(), fields.next())
    else {
        return Some(malformed);
    };
    if kw != "blocks" {
        return Some(malformed);
    }
    let Some(version) = version.strip_prefix('v').and_then(|v| v.parse::<u32>().ok()) else {
        return Some(malformed);
    };
    let Ok(blocks) = blocks.parse::<usize>() else {
        return Some(malformed);
    };
    Some(Ok((version, blocks)))
}

/// Writes an assignment as `node_name block` lines (pass `&mut writer`
/// to keep the writer).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `assignment.len() != graph.node_count()`.
pub fn write_assignment<W: Write>(
    mut writer: W,
    graph: &Hypergraph,
    assignment: &[u32],
) -> std::io::Result<()> {
    assert_eq!(assignment.len(), graph.node_count(), "assignment must cover the graph");
    for node in graph.node_ids() {
        writeln!(writer, "{} {}", graph.node_name(node), assignment[node.index()])?;
    }
    Ok(())
}

/// Reads an assignment, resolving node names against `graph`. Both the
/// plain format and the versioned-header format are accepted; a header
/// is validated (version, declared block count vs the body).
///
/// Returns the per-node block vector and the block count (1 + the
/// largest block index seen).
///
/// # Errors
///
/// Returns [`ReadAssignmentError`] on malformed lines, unknown names,
/// nodes left unassigned, or a bad/mismatching versioned header.
pub fn read_assignment<R: Read>(
    reader: R,
    graph: &Hypergraph,
) -> Result<(Vec<u32>, usize), ReadAssignmentError> {
    let index = graph.node_index_by_name();
    let mut assignment = vec![u32::MAX; graph.node_count()];
    let mut k = 0usize;
    let mut declared: Option<usize> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|_| ReadAssignmentError::Io { line: line_no })?;
        let line = line.trim();
        if line_no == 1 {
            if let Some(header) = parse_header(line) {
                let (version, blocks) = header?;
                if version != ASSIGNMENT_FORMAT_VERSION {
                    return Err(ReadAssignmentError::UnsupportedVersion { version });
                }
                declared = Some(blocks);
                continue;
            }
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(name), Some(block)) = (fields.next(), fields.next()) else {
            return Err(ReadAssignmentError::MalformedLine { line: line_no });
        };
        let node = index.get(name).ok_or_else(|| ReadAssignmentError::UnknownNode {
            line: line_no,
            name: name.to_owned(),
        })?;
        let block: u32 =
            block.parse().map_err(|_| ReadAssignmentError::MalformedLine { line: line_no })?;
        assignment[node.index()] = block;
        k = k.max(block as usize + 1);
    }
    if let Some(missing) = graph.node_ids().find(|v| assignment[v.index()] == u32::MAX) {
        return Err(ReadAssignmentError::MissingNode { name: graph.node_name(missing).to_owned() });
    }
    if let Some(declared) = declared {
        if declared != k {
            return Err(ReadAssignmentError::BlockCountMismatch { declared, found: k });
        }
    }
    Ok((assignment, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let mut text = Vec::new();
        write_assignment(&mut text, &g, &[1, 0]).unwrap();
        let (assignment, k) = read_assignment(text.as_slice(), &g).unwrap();
        assert_eq!(assignment, vec![1, 0]);
        assert_eq!(k, 2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = sample();
        let text = "# header\n\nx 0\ny 0\n";
        let (assignment, k) = read_assignment(text.as_bytes(), &g).unwrap();
        assert_eq!(assignment, vec![0, 0]);
        assert_eq!(k, 1);
    }

    #[test]
    fn unknown_node_rejected() {
        let g = sample();
        let err = read_assignment("z 0\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::UnknownNode { .. }));
    }

    #[test]
    fn missing_node_rejected() {
        let g = sample();
        let err = read_assignment("x 0\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::MissingNode { .. }));
    }

    #[test]
    fn versioned_roundtrip() {
        let g = sample();
        let mut text = Vec::new();
        write_assignment_versioned(&mut text, &g, &[1, 0], 2).unwrap();
        let first = std::str::from_utf8(&text).unwrap().lines().next().unwrap().to_owned();
        assert_eq!(first, "#%fpart-assignment v1 blocks 2");
        let (assignment, k) = read_assignment(text.as_slice(), &g).unwrap();
        assert_eq!(assignment, vec![1, 0]);
        assert_eq!(k, 2);
    }

    #[test]
    fn unsupported_version_rejected() {
        let g = sample();
        let err = read_assignment("#%fpart-assignment v99 blocks 1\nx 0\ny 0\n".as_bytes(), &g)
            .unwrap_err();
        assert_eq!(err, ReadAssignmentError::UnsupportedVersion { version: 99 });
    }

    #[test]
    fn block_count_mismatch_rejected() {
        let g = sample();
        let err = read_assignment("#%fpart-assignment v1 blocks 3\nx 0\ny 1\n".as_bytes(), &g)
            .unwrap_err();
        assert_eq!(err, ReadAssignmentError::BlockCountMismatch { declared: 3, found: 2 });
    }

    #[test]
    fn malformed_header_rejected() {
        let g = sample();
        for bad in [
            "#%fpart-assignment\nx 0\ny 0\n",
            "#%fpart-assignment v1 blocks\nx 0\ny 0\n",
            "#%fpart-assignment one blocks 2\nx 0\ny 0\n",
            "#%fpart-assignment v1 cells 2\nx 0\ny 0\n",
        ] {
            let err = read_assignment(bad.as_bytes(), &g).unwrap_err();
            assert_eq!(err, ReadAssignmentError::MalformedHeader { line: 1 }, "input: {bad:?}");
        }
    }

    #[test]
    fn header_after_line_one_is_a_plain_comment() {
        let g = sample();
        let text = "# preamble\n#%fpart-assignment v99 blocks 7\nx 0\ny 0\n";
        let (assignment, k) = read_assignment(text.as_bytes(), &g).unwrap();
        assert_eq!(assignment, vec![0, 0]);
        assert_eq!(k, 1);
    }

    #[test]
    fn malformed_line_rejected() {
        let g = sample();
        let err = read_assignment("x notanumber\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::MalformedLine { line: 1 }));
        let err = read_assignment("loner\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::MalformedLine { line: 1 }));
    }
}
