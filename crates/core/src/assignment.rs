//! Assignment-file I/O: the plain `node_name block` interchange format
//! the `fpart` CLI emits and verifies. Library users get the same
//! round-trip without reimplementing the parsing.
//!
//! ```text
//! # comments and blank lines are ignored
//! u17 0
//! u18 2
//! ```

use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

use fpart_hypergraph::Hypergraph;

/// An error while reading an assignment file.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReadAssignmentError {
    /// A line was not `node block`.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A named node does not exist in the graph.
    UnknownNode {
        /// 1-based line number.
        line: usize,
        /// The unresolved name.
        name: String,
    },
    /// A node of the graph has no line in the file.
    MissingNode {
        /// Name of the uncovered node.
        name: String,
    },
    /// The reader failed or produced non-UTF-8 data.
    Io {
        /// 1-based line number where reading failed.
        line: usize,
    },
}

impl fmt::Display for ReadAssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadAssignmentError::MalformedLine { line } => {
                write!(f, "line {line}: expected `node block`")
            }
            ReadAssignmentError::UnknownNode { line, name } => {
                write!(f, "line {line}: unknown node `{name}`")
            }
            ReadAssignmentError::MissingNode { name } => {
                write!(f, "node `{name}` has no assignment")
            }
            ReadAssignmentError::Io { line } => write!(f, "line {line}: read failed"),
        }
    }
}

impl Error for ReadAssignmentError {}

/// Writes an assignment as `node_name block` lines (pass `&mut writer`
/// to keep the writer).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Panics
///
/// Panics if `assignment.len() != graph.node_count()`.
pub fn write_assignment<W: Write>(
    mut writer: W,
    graph: &Hypergraph,
    assignment: &[u32],
) -> std::io::Result<()> {
    assert_eq!(assignment.len(), graph.node_count(), "assignment must cover the graph");
    for node in graph.node_ids() {
        writeln!(writer, "{} {}", graph.node_name(node), assignment[node.index()])?;
    }
    Ok(())
}

/// Reads an assignment, resolving node names against `graph`.
///
/// Returns the per-node block vector and the block count (1 + the
/// largest block index seen).
///
/// # Errors
///
/// Returns [`ReadAssignmentError`] on malformed lines, unknown names, or
/// nodes left unassigned.
pub fn read_assignment<R: Read>(
    reader: R,
    graph: &Hypergraph,
) -> Result<(Vec<u32>, usize), ReadAssignmentError> {
    let index = graph.node_index_by_name();
    let mut assignment = vec![u32::MAX; graph.node_count()];
    let mut k = 0usize;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|_| ReadAssignmentError::Io { line: line_no })?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(name), Some(block)) = (fields.next(), fields.next()) else {
            return Err(ReadAssignmentError::MalformedLine { line: line_no });
        };
        let node = index.get(name).ok_or_else(|| ReadAssignmentError::UnknownNode {
            line: line_no,
            name: name.to_owned(),
        })?;
        let block: u32 =
            block.parse().map_err(|_| ReadAssignmentError::MalformedLine { line: line_no })?;
        assignment[node.index()] = block;
        k = k.max(block as usize + 1);
    }
    if let Some(missing) = graph.node_ids().find(|v| assignment[v.index()] == u32::MAX) {
        return Err(ReadAssignmentError::MissingNode { name: graph.node_name(missing).to_owned() });
    }
    Ok((assignment, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 1);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let mut text = Vec::new();
        write_assignment(&mut text, &g, &[1, 0]).unwrap();
        let (assignment, k) = read_assignment(text.as_slice(), &g).unwrap();
        assert_eq!(assignment, vec![1, 0]);
        assert_eq!(k, 2);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = sample();
        let text = "# header\n\nx 0\ny 0\n";
        let (assignment, k) = read_assignment(text.as_bytes(), &g).unwrap();
        assert_eq!(assignment, vec![0, 0]);
        assert_eq!(k, 1);
    }

    #[test]
    fn unknown_node_rejected() {
        let g = sample();
        let err = read_assignment("z 0\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::UnknownNode { .. }));
    }

    #[test]
    fn missing_node_rejected() {
        let g = sample();
        let err = read_assignment("x 0\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::MissingNode { .. }));
    }

    #[test]
    fn malformed_line_rejected() {
        let g = sample();
        let err = read_assignment("x notanumber\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::MalformedLine { line: 1 }));
        let err = read_assignment("loner\n".as_bytes(), &g).unwrap_err();
        assert!(matches!(err, ReadAssignmentError::MalformedLine { line: 1 }));
    }
}
