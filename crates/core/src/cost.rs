//! Infeasibility-distance cost function and lexicographic solution
//! comparison (paper §3.3–§3.4).

use std::cmp::Ordering;
use std::fmt;

use fpart_device::DeviceConstraints;

use crate::config::FpartConfig;
use crate::state::PartitionState;

/// Classification of a partitioning solution (paper §2, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeasibilityClass {
    /// Every block meets the device constraints.
    Feasible,
    /// Exactly one block (the remainder) violates the constraints.
    SemiFeasible,
    /// More than one block violates the constraints.
    Infeasible,
}

/// Classifies a solution from its violator count.
#[must_use]
pub fn classify(feasible_blocks: usize, total_blocks: usize) -> FeasibilityClass {
    match total_blocks - feasible_blocks {
        0 => FeasibilityClass::Feasible,
        1 => FeasibilityClass::SemiFeasible,
        _ => FeasibilityClass::Infeasible,
    }
}

/// The lexicographic solution quality key `(f, d_k, T^SUM, d_k^E)` of
/// §3.4, with the cut size as a final deterministic tie-break.
///
/// A key is *better* when it has more feasible blocks, then a smaller
/// infeasibility distance, then a smaller total terminal count, then a
/// smaller external-balance deviation, then a smaller cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolutionKey {
    /// Number of blocks meeting the device constraints (`f`).
    pub feasible_blocks: usize,
    /// Total number of blocks when the key was taken.
    pub total_blocks: usize,
    /// Infeasibility distance `d_k` (§3.3), including the `λ^R d_k^R`
    /// size-deviation penalty.
    pub infeasibility: f64,
    /// Total terminal count `T^SUM = Σ|Y_i|`.
    pub terminal_sum: usize,
    /// External I/O balancing factor `d_k^E` (§3.4).
    pub external_balance: f64,
    /// Nets spanning more than one block.
    pub cut: usize,
}

impl SolutionKey {
    /// Returns the feasibility classification of the keyed solution.
    #[must_use]
    pub fn class(&self) -> FeasibilityClass {
        classify(self.feasible_blocks, self.total_blocks)
    }

    /// Returns `true` if `self` is strictly better than `other` in the
    /// paper's lexicographic order.
    #[must_use]
    pub fn better_than(&self, other: &SolutionKey) -> bool {
        self.cmp_key(other) == Ordering::Less
    }

    /// Total order: `Less` means better.
    #[must_use]
    pub fn cmp_key(&self, other: &SolutionKey) -> Ordering {
        other
            .feasible_blocks
            .cmp(&self.feasible_blocks)
            .then_with(|| self.infeasibility.total_cmp(&other.infeasibility))
            .then_with(|| self.terminal_sum.cmp(&other.terminal_sum))
            .then_with(|| self.external_balance.total_cmp(&other.external_balance))
            .then_with(|| self.cut.cmp(&other.cut))
    }
}

/// Compact, stable, single-line rendering in the key's lexicographic
/// field order — `f=<feasible>/<total> d=<infeasibility> tsum=<terminal
/// sum> ext=<external balance> cut=<cut>` — used by the CLI's `--trace`
/// output, so it is diffable: the column set, order, and float precision
/// (three decimals) are a compatibility surface.
impl fmt::Display for SolutionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f={}/{} d={:.3} tsum={} ext={:.3} cut={}",
            self.feasible_blocks,
            self.total_blocks,
            self.infeasibility,
            self.terminal_sum,
            self.external_balance,
            self.cut
        )
    }
}

/// Evaluates [`SolutionKey`]s for a fixed device, lower bound `M`, and
/// terminal total `|Y₀|`.
///
/// Constructed once per partitioning run. A from-scratch evaluation
/// ([`Self::key`]) is `O(k)`; the move loop instead maintains a
/// [`KeyTracker`], which delta-updates the same aggregates in `O(1)` per
/// move and produces bit-identical keys.
///
/// All per-block cost terms are aggregated as *integers* (size excess,
/// terminal excess, external deficit numerators) and converted to the
/// paper's `f64` distances by a single division at key-assembly time.
/// Integer sums are order-independent, which is what makes the
/// incremental and from-scratch paths agree exactly.
#[derive(Debug, Clone)]
pub struct CostEvaluator {
    constraints: DeviceConstraints,
    lambda_s: f64,
    lambda_t: f64,
    lambda_r: f64,
    /// Lower bound `M` on the number of devices.
    m: usize,
    /// Circuit terminal total `|Y₀|` (the numerator of `T^E_AVG`).
    y0: u64,
    use_infeasibility: bool,
    use_external_balance: bool,
}

/// Order-independent integer aggregates from which a [`SolutionKey`] is
/// assembled in O(1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct KeyAggregates {
    /// Blocks meeting the device constraints.
    feasible: usize,
    /// `Σ_i max(0, S_i − S_MAX)`.
    size_excess: u64,
    /// `Σ_i max(0, T_i − T_MAX)`.
    term_excess: u64,
    /// `Σ_i max(0, |Y₀| − M·T_i^E)` — the external-balance deficit
    /// numerator (`d_k^E = Σ (T^E_AVG − T_i^E)/T^E_AVG` with
    /// `T^E_AVG = |Y₀|/M`, rewritten over a common denominator `|Y₀|`).
    ext_deficit: u64,
}

/// One block's contribution to the [`KeyAggregates`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BlockTerms {
    fits: bool,
    size_excess: u64,
    term_excess: u64,
    ext_deficit: u64,
}

impl KeyAggregates {
    #[inline]
    fn add(&mut self, t: BlockTerms) {
        self.feasible += usize::from(t.fits);
        self.size_excess += t.size_excess;
        self.term_excess += t.term_excess;
        self.ext_deficit += t.ext_deficit;
    }

    #[inline]
    fn remove(&mut self, t: BlockTerms) {
        self.feasible -= usize::from(t.fits);
        self.size_excess -= t.size_excess;
        self.term_excess -= t.term_excess;
        self.ext_deficit -= t.ext_deficit;
    }
}

impl CostEvaluator {
    /// Creates an evaluator for the given device, configuration, lower
    /// bound `M`, and circuit terminal count `|Y₀|`.
    #[must_use]
    pub fn new(
        constraints: DeviceConstraints,
        config: &FpartConfig,
        m: usize,
        total_terminals: usize,
    ) -> Self {
        CostEvaluator {
            constraints,
            lambda_s: config.lambda_s,
            lambda_t: config.lambda_t,
            lambda_r: config.lambda_r,
            m: m.max(1),
            y0: total_terminals as u64,
            use_infeasibility: config.use_infeasibility_cost,
            use_external_balance: config.use_external_balance,
        }
    }

    /// Returns the device constraints this evaluator enforces.
    #[must_use]
    pub fn constraints(&self) -> DeviceConstraints {
        self.constraints
    }

    /// Returns a copy with the full paper cost re-enabled, regardless of
    /// ablation flags. The constructive initial bipartition always ranks
    /// its two methods with the full key: every recursive method the
    /// paper builds on (k-way.x included) constructs *well-filled
    /// feasible* blocks, so a cut-only ranking there would caricature the
    /// baseline rather than model it.
    #[must_use]
    pub fn with_full_cost(&self) -> CostEvaluator {
        CostEvaluator { use_infeasibility: true, use_external_balance: true, ..self.clone() }
    }

    /// Returns the lower bound `M` used by the deviation penalties.
    #[must_use]
    pub fn lower_bound(&self) -> usize {
        self.m
    }

    /// Infeasibility distance `d_i = λ^S d_i^S + λ^T d_i^T` of one block.
    #[must_use]
    pub fn block_distance(&self, size: u64, terminals: usize) -> f64 {
        let s_max = self.constraints.s_max as f64;
        let t_max = self.constraints.t_max as f64;
        let ds = if size > self.constraints.s_max && s_max > 0.0 {
            (size as f64 - s_max) / s_max
        } else {
            0.0
        };
        let dt = if terminals > self.constraints.t_max && t_max > 0.0 {
            (terminals as f64 - t_max) / t_max
        } else {
            0.0
        };
        self.lambda_s * ds + self.lambda_t * dt
    }

    /// Size-deviation penalty `d_k^R` (§3.3): with `p` blocks already
    /// peeled off, the remainder must still be split into at least
    /// `M − p` devices; if even the *average* resulting block size
    /// `S_AVG = S(R)/(M − p + 1)` exceeds `S_MAX`, the penalty
    /// `S_AVG / S_MAX` applies.
    #[must_use]
    pub fn remainder_penalty(&self, remainder_size: u64, peeled_blocks: usize) -> f64 {
        // The paper's denominator M − k + 1, with k = peeled_blocks,
        // clamped to at least 1 once k exceeds M.
        let denom = self.m.saturating_sub(peeled_blocks).saturating_add(1).max(1) as f64;
        let s_avg = remainder_size as f64 / denom;
        let s_max = self.constraints.s_max as f64;
        if s_max > 0.0 && s_avg > s_max {
            s_avg / s_max
        } else {
            0.0
        }
    }

    /// External I/O balance factor `d_k^E` (§3.4): total relative deficit
    /// of under-served blocks w.r.t. `T^E_AVG`.
    ///
    /// Computed over the common denominator `|Y₀|` — each block with
    /// `M·T_i^E < |Y₀|` contributes `(|Y₀| − M·T_i^E)/|Y₀|`, which equals
    /// the paper's `(T^E_AVG − T_i^E)/T^E_AVG` — so the value is a single
    /// division of an integer sum and therefore order-independent.
    #[must_use]
    pub fn external_balance(&self, externals: impl IntoIterator<Item = usize>) -> f64 {
        let deficit: u64 = externals.into_iter().map(|t| self.block_ext_deficit(t)).sum();
        self.balance_from_deficit(deficit)
    }

    /// One block's external-deficit numerator `max(0, |Y₀| − M·T_i^E)`.
    #[inline]
    fn block_ext_deficit(&self, externals: usize) -> u64 {
        self.y0.saturating_sub((self.m as u64).saturating_mul(externals as u64))
    }

    /// Converts an external-deficit numerator to the `d_k^E` factor.
    #[inline]
    fn balance_from_deficit(&self, deficit: u64) -> f64 {
        if !self.use_external_balance || self.y0 == 0 {
            0.0
        } else {
            deficit as f64 / self.y0 as f64
        }
    }

    /// One block's contribution to the key aggregates.
    #[inline]
    fn block_terms(&self, size: u64, terminals: usize, externals: usize) -> BlockTerms {
        BlockTerms {
            fits: self.constraints.fits(size, terminals),
            size_excess: size.saturating_sub(self.constraints.s_max),
            term_excess: (terminals as u64).saturating_sub(self.constraints.t_max as u64),
            ext_deficit: self.block_ext_deficit(externals),
        }
    }

    /// Converts excess sums to the infeasibility distance
    /// `λ^S Σd_i^S + λ^T Σd_i^T` (no remainder term).
    #[inline]
    fn distance_from_excess(&self, size_excess: u64, term_excess: u64) -> f64 {
        let mut d = 0.0f64;
        if size_excess > 0 && self.constraints.s_max > 0 {
            d += self.lambda_s * (size_excess as f64 / self.constraints.s_max as f64);
        }
        if term_excess > 0 && self.constraints.t_max > 0 {
            d += self.lambda_t * (term_excess as f64 / self.constraints.t_max as f64);
        }
        d
    }

    /// O(k) scan producing the aggregates for the current state.
    fn scan_aggregates(&self, state: &PartitionState<'_>) -> KeyAggregates {
        let mut agg = KeyAggregates::default();
        for b in 0..state.block_count() {
            agg.add(self.block_terms(
                state.block_size(b),
                state.block_terminals(b),
                state.block_externals(b),
            ));
        }
        agg
    }

    /// O(1) assembly of the final key from aggregates. Shared by the
    /// from-scratch path and [`KeyTracker`], so both produce the exact
    /// same floating-point values.
    fn assemble_key(
        &self,
        agg: KeyAggregates,
        state: &PartitionState<'_>,
        remainder: Option<usize>,
    ) -> SolutionKey {
        let k = state.block_count();
        if !self.use_infeasibility {
            // Ablation: classical cut-only ranking (k-way.x cost function).
            return SolutionKey {
                feasible_blocks: agg.feasible,
                total_blocks: k,
                infeasibility: 0.0,
                terminal_sum: 0,
                external_balance: 0.0,
                cut: state.cut_count(),
            };
        }
        let mut distance = self.distance_from_excess(agg.size_excess, agg.term_excess);
        if let Some(r) = remainder {
            let peeled = k.saturating_sub(1);
            distance += self.lambda_r * self.remainder_penalty(state.block_size(r), peeled);
        }
        SolutionKey {
            feasible_blocks: agg.feasible,
            total_blocks: k,
            infeasibility: distance,
            terminal_sum: state.terminal_sum(),
            external_balance: self.balance_from_deficit(agg.ext_deficit),
            cut: state.cut_count(),
        }
    }

    /// Computes the full solution key for the current state (O(k) scan).
    ///
    /// `remainder` is the block currently designated as the remainder
    /// `R_k` (used by the `d_k^R` penalty); pass `None` once no remainder
    /// is distinguished (final solutions).
    #[must_use]
    pub fn key(&self, state: &PartitionState<'_>, remainder: Option<usize>) -> SolutionKey {
        self.assemble_key(self.scan_aggregates(state), state, remainder)
    }
}

/// Incrementally maintained key aggregates: the move loop's O(1)
/// replacement for the O(k) [`CostEvaluator::key`] rescan.
///
/// The tracker caches each block's [`BlockTerms`]; after a move only the
/// two touched blocks are re-derived and the aggregate sums adjusted.
/// Because all aggregates are integers and the final key is assembled by
/// the same [`CostEvaluator::assemble_key`] as the from-scratch path,
/// the produced keys are bit-identical regardless of move history —
/// an invariant enforced by `tests/invariants_proptest.rs` and by
/// debug assertions in the pass engine.
#[derive(Debug, Clone)]
pub struct KeyTracker {
    blocks: Vec<BlockTerms>,
    agg: KeyAggregates,
}

impl KeyTracker {
    /// Builds a tracker for the current state (one O(k) scan).
    #[must_use]
    pub fn new(evaluator: &CostEvaluator, state: &PartitionState<'_>) -> Self {
        let mut tracker = KeyTracker { blocks: Vec::new(), agg: KeyAggregates::default() };
        tracker.rebuild(evaluator, state);
        tracker
    }

    /// Re-derives every cached term from the state (O(k)); reuses the
    /// existing allocation.
    pub fn rebuild(&mut self, evaluator: &CostEvaluator, state: &PartitionState<'_>) {
        self.blocks.clear();
        self.agg = KeyAggregates::default();
        self.ensure_blocks(evaluator, state);
    }

    /// Accounts for blocks appended by `PartitionState::add_block` since
    /// the last sync.
    pub fn ensure_blocks(&mut self, evaluator: &CostEvaluator, state: &PartitionState<'_>) {
        while self.blocks.len() < state.block_count() {
            let b = self.blocks.len();
            let terms = evaluator.block_terms(
                state.block_size(b),
                state.block_terminals(b),
                state.block_externals(b),
            );
            self.agg.add(terms);
            self.blocks.push(terms);
        }
    }

    /// Re-derives one block's cached terms from the state.
    #[inline]
    fn sync_block(&mut self, evaluator: &CostEvaluator, state: &PartitionState<'_>, block: usize) {
        let terms = evaluator.block_terms(
            state.block_size(block),
            state.block_terminals(block),
            state.block_externals(block),
        );
        self.agg.remove(self.blocks[block]);
        self.agg.add(terms);
        self.blocks[block] = terms;
    }

    /// Updates the tracker after `state.move_node(_, to)` moved a cell
    /// from block `from` to block `to`. O(1): only the two touched
    /// blocks are re-derived.
    #[inline]
    pub fn apply_move(
        &mut self,
        evaluator: &CostEvaluator,
        state: &PartitionState<'_>,
        from: usize,
        to: usize,
    ) {
        self.sync_block(evaluator, state, from);
        if to != from {
            self.sync_block(evaluator, state, to);
        }
    }

    /// Assembles the current key in O(1).
    #[must_use]
    pub fn key(
        &self,
        evaluator: &CostEvaluator,
        state: &PartitionState<'_>,
        remainder: Option<usize>,
    ) -> SolutionKey {
        debug_assert_eq!(
            self.blocks.len(),
            state.block_count(),
            "tracker out of sync with block count; call ensure_blocks"
        );
        evaluator.assemble_key(self.agg, state, remainder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::HypergraphBuilder;

    fn evaluator(s_max: u64, t_max: usize, m: usize, y0: usize) -> CostEvaluator {
        CostEvaluator::new(DeviceConstraints::new(s_max, t_max), &FpartConfig::default(), m, y0)
    }

    #[test]
    fn classify_matches_paper_definitions() {
        assert_eq!(classify(4, 4), FeasibilityClass::Feasible);
        assert_eq!(classify(3, 4), FeasibilityClass::SemiFeasible);
        assert_eq!(classify(2, 4), FeasibilityClass::Infeasible);
    }

    #[test]
    fn block_distance_zero_inside_region() {
        let e = evaluator(100, 50, 4, 100);
        assert_eq!(e.block_distance(100, 50), 0.0);
        assert_eq!(e.block_distance(1, 1), 0.0);
    }

    #[test]
    fn block_distance_weights_components() {
        let e = evaluator(100, 50, 4, 100);
        // size 150 → d^S = 0.5; terminals 75 → d^T = 0.5
        let d = e.block_distance(150, 75);
        assert!((d - (0.4 * 0.5 + 0.6 * 0.5)).abs() < 1e-12);
        // I/O-only violation is weighted more than the same size-only one.
        assert!(e.block_distance(100, 75) > e.block_distance(150, 50));
    }

    #[test]
    fn remainder_penalty_activates_when_average_exceeds() {
        let e = evaluator(100, 50, 5, 100);
        // 1 block peeled, remainder 600 → S_AVG = 600/5 = 120 > 100.
        assert!((e.remainder_penalty(600, 1) - 1.2).abs() < 1e-12);
        // remainder 400 → S_AVG = 80 ≤ 100 → no penalty.
        assert_eq!(e.remainder_penalty(400, 1), 0.0);
        // All M blocks peeled: denominator clamps at 1.
        assert!(e.remainder_penalty(150, 7) > 0.0);
    }

    #[test]
    fn external_balance_only_counts_deficits() {
        let e = evaluator(100, 50, 4, 80); // T_AVG^E = 20
        let d = e.external_balance([10usize, 20, 30, 20]);
        assert!((d - 0.5).abs() < 1e-12); // only the 10 is under average
        assert_eq!(e.external_balance([20usize, 25, 30, 25]), 0.0);
    }

    #[test]
    fn key_ordering_is_lexicographic() {
        let base = SolutionKey {
            feasible_blocks: 3,
            total_blocks: 4,
            infeasibility: 1.0,
            terminal_sum: 100,
            external_balance: 0.5,
            cut: 40,
        };
        let more_feasible = SolutionKey { feasible_blocks: 4, ..base };
        assert!(more_feasible.better_than(&base));
        let lower_distance = SolutionKey { infeasibility: 0.5, ..base };
        assert!(lower_distance.better_than(&base));
        let fewer_terminals = SolutionKey { terminal_sum: 90, ..base };
        assert!(fewer_terminals.better_than(&base));
        let better_balance = SolutionKey { external_balance: 0.2, ..base };
        assert!(better_balance.better_than(&base));
        let smaller_cut = SolutionKey { cut: 39, ..base };
        assert!(smaller_cut.better_than(&base));
        // Feasibility dominates everything else.
        let tempting =
            SolutionKey { feasible_blocks: 2, infeasibility: 0.0, terminal_sum: 0, ..base };
        assert!(base.better_than(&tempting));
        assert!(!base.better_than(&base.clone()));
    }

    #[test]
    fn key_from_state_counts_feasible_blocks() {
        let mut b = HypergraphBuilder::new();
        let nodes: Vec<_> = (0..6).map(|i| b.add_node(format!("n{i}"), 10)).collect();
        for w in nodes.windows(2) {
            b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap();
        }
        let g = b.finish().unwrap();
        // blocks: {0,1}=20, {2,3}=20, {4,5}=20; S_MAX 25 → all feasible.
        let state = PartitionState::from_assignment(&g, vec![0, 0, 1, 1, 2, 2], 3);
        let e = evaluator(25, 10, 3, 0);
        let key = e.key(&state, Some(2));
        assert_eq!(key.feasible_blocks, 3);
        assert_eq!(key.class(), FeasibilityClass::Feasible);
        assert_eq!(key.cut, 2);
        assert_eq!(key.infeasibility, 0.0);
        // Tighter size budget → one violator per block of 20 > 15.
        let tight = evaluator(15, 10, 4, 0);
        let key2 = tight.key(&state, Some(2));
        assert_eq!(key2.feasible_blocks, 0);
        assert!(key2.infeasibility > 0.0);
    }

    #[test]
    fn ablated_evaluator_ranks_by_cut_only() {
        let config = FpartConfig { use_infeasibility_cost: false, ..FpartConfig::default() };
        let e = CostEvaluator::new(DeviceConstraints::new(10, 10), &config, 2, 4);
        let mut b = HypergraphBuilder::new();
        let x = b.add_node("x", 20);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let state = PartitionState::from_assignment(&g, vec![0, 1], 2);
        let key = e.key(&state, None);
        assert_eq!(key.infeasibility, 0.0);
        assert_eq!(key.cut, 1);
        assert_eq!(key.terminal_sum, 0);
    }
}
