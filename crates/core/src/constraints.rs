//! Feasible-move regions (paper §3.5).
//!
//! The paper delimits the solution-space exploration with asymmetric size
//! windows on cell moves:
//!
//! * a non-remainder block may not shrink below `ε_min · S_MAX`, with a
//!   strict `ε²_min = 0.95` during two-block passes (to bias moves *from*
//!   the remainder) and a loose `ε*_min = 0.3` during multi-block passes;
//! * a non-remainder block may grow to `ε_max · S_MAX = 1.05 · S_MAX`
//!   while the iteration count has not yet reached the lower bound `M`;
//!   beyond `M` there must be enough slack, so growth stops at `S_MAX`;
//! * the remainder has no size window at all (`ε^R_max = ∞`);
//! * I/O counts are never constrained during improvement.
//!
//! (The paper prints the window as `S_MAX(1−ε_min) ≤ S_i ≤ S_MAX(1+ε_max)`
//! but reports `ε²_min = 0.95`, `ε*_min = 0.3`, `ε_max = 1.05`; read
//! literally the two are inconsistent. We take the published *values* as
//! direct multipliers — lower bound `ε_min·S_MAX`, upper bound
//! `ε_max·S_MAX` — which is the only reading under which the stated intent
//! "`ε_min` for two-block passes should be more strict, otherwise clusters
//! have a tendency to move to the remainder" holds.)

use fpart_device::DeviceConstraints;

use crate::config::FpartConfig;
use crate::state::PartitionState;

/// Which improvement pass is running; selects the `ε_min` coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// An `Improve(A, B)` call between exactly two blocks.
    TwoBlock,
    /// An `Improve(P₀ … P_k, R_k)` call involving three or more blocks.
    MultiBlock,
}

/// Precomputed move-legality windows for one improvement call.
#[derive(Debug, Clone, Copy)]
pub struct MoveRegions {
    /// Lower size bound for non-remainder blocks (`ε_min · S_MAX`).
    lower: u64,
    /// Upper size bound for non-remainder blocks.
    upper: u64,
    /// Block index of the current remainder (exempt from both bounds).
    remainder: usize,
    /// Whether the paper's asymmetric regions are active (ablation flag).
    enabled: bool,
    /// Plain `S_MAX`, used as the symmetric cap in the ablated mode.
    s_max: u64,
}

impl MoveRegions {
    /// Builds the regions for one improvement call.
    ///
    /// `minimum_reached` is `k > M` in the paper's terms: once the
    /// iteration count exceeds the theoretical minimum, size-violating
    /// moves into non-remainder blocks are forbidden.
    #[must_use]
    pub fn new(
        config: &FpartConfig,
        constraints: DeviceConstraints,
        kind: PassKind,
        remainder: usize,
        minimum_reached: bool,
    ) -> Self {
        let s_max = constraints.s_max;
        let eps_min = match kind {
            PassKind::TwoBlock => config.eps_min_two,
            PassKind::MultiBlock => config.eps_min_multi,
        };
        let upper =
            if minimum_reached { s_max } else { (s_max as f64 * config.eps_max).floor() as u64 };
        MoveRegions {
            lower: (s_max as f64 * eps_min).ceil() as u64,
            upper,
            remainder,
            enabled: config.use_move_regions,
            s_max,
        }
    }

    /// Returns the lower size bound applied to non-remainder donors.
    #[must_use]
    pub fn lower_bound(&self) -> u64 {
        if self.enabled {
            self.lower
        } else {
            0
        }
    }

    /// Returns the upper size bound applied to non-remainder receivers.
    #[must_use]
    pub fn upper_bound(&self) -> u64 {
        if self.enabled {
            self.upper
        } else {
            (self.s_max as f64 * 1.05).floor() as u64
        }
    }

    /// Block-level gate: can `block` possibly donate a cell?
    ///
    /// Used to skip whole move directions (the paper removes the
    /// direction's bucket from the heap when a block reaches the region
    /// boundary).
    #[inline]
    #[must_use]
    pub fn can_donate(&self, state: &PartitionState<'_>, block: usize) -> bool {
        block == self.remainder || state.block_size(block) > self.lower_bound()
    }

    /// Block-level gate: can `block` possibly receive a cell?
    #[inline]
    #[must_use]
    pub fn can_receive(&self, state: &PartitionState<'_>, block: usize) -> bool {
        if self.enabled && block == self.remainder {
            return true; // ε^R_max = ∞
        }
        state.block_size(block) < self.upper_bound()
    }

    /// Exact per-cell legality of moving a cell of `cell_size` from
    /// `from` to `to` given the blocks' current sizes.
    #[inline]
    #[must_use]
    pub fn move_allowed(
        &self,
        state: &PartitionState<'_>,
        cell_size: u64,
        from: usize,
        to: usize,
    ) -> bool {
        let remainder_exempt = self.enabled;
        if !(remainder_exempt && from == self.remainder) {
            let after = state.block_size(from).saturating_sub(cell_size);
            if after < self.lower_bound() {
                return false;
            }
        }
        if !(remainder_exempt && to == self.remainder) {
            let after = state.block_size(to) + cell_size;
            if after > self.upper_bound() {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::{Hypergraph, HypergraphBuilder, NodeId};

    fn graph_with_sizes(sizes: &[u32]) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let nodes: Vec<NodeId> =
            sizes.iter().enumerate().map(|(i, &s)| b.add_node(format!("n{i}"), s)).collect();
        for w in nodes.windows(2) {
            b.add_net(format!("e{}", w[0]), [w[0], w[1]]).unwrap();
        }
        b.finish().unwrap()
    }

    fn regions(kind: PassKind, minimum_reached: bool) -> MoveRegions {
        MoveRegions::new(
            &FpartConfig::default(),
            DeviceConstraints::new(100, 50),
            kind,
            0, // block 0 is the remainder
            minimum_reached,
        )
    }

    #[test]
    fn bounds_follow_paper_values() {
        let two = regions(PassKind::TwoBlock, false);
        assert_eq!(two.lower_bound(), 95);
        assert_eq!(two.upper_bound(), 105);
        let multi = regions(PassKind::MultiBlock, false);
        assert_eq!(multi.lower_bound(), 30);
        assert_eq!(multi.upper_bound(), 105);
        let after_m = regions(PassKind::TwoBlock, true);
        assert_eq!(after_m.upper_bound(), 100);
    }

    #[test]
    fn remainder_is_exempt_both_ways() {
        // block 0 (remainder) holds 60+40, block 1 holds 100.
        let g = graph_with_sizes(&[60, 40, 100]);
        let state = crate::state::PartitionState::from_assignment(&g, vec![0, 0, 1], 2);
        let r = regions(PassKind::TwoBlock, false);
        // Remainder may shrink below any lower bound (donating 5 of 100
        // leaves 95 on the remainder; irrelevant — it is exempt) as long
        // as the receiver accepts the size (100 + 5 = 105 ≤ 105)…
        assert!(r.move_allowed(&state, 5, 0, 1));
        // …and may grow without an upper limit: the remainder at 100
        // receiving 4 more is fine even though a non-remainder block of
        // 100 could also accept it; the donor (block 1, 100 → 96 ≥ 95)
        // stays inside its own window.
        assert!(r.move_allowed(&state, 4, 1, 0));
    }

    #[test]
    fn non_remainder_upper_bound_enforced() {
        let g = graph_with_sizes(&[60, 40, 100]);
        let state = crate::state::PartitionState::from_assignment(&g, vec![0, 0, 1], 2);
        let r = regions(PassKind::TwoBlock, false);
        // moving size-60 cell into block 1 (100) → 160 > 105: illegal.
        assert!(!r.move_allowed(&state, 60, 0, 1));
        // size-5 cell into block 1 → 105 = bound: legal.
        assert!(r.move_allowed(&state, 5, 0, 1));
        // into the remainder there is no upper limit; the donor only has
        // to respect its own lower bound (100 − 5 = 95 ≥ 95).
        assert!(r.move_allowed(&state, 5, 1, 0));
        // …whereas donating 6 would drop the donor to 94 < 95.
        assert!(!r.move_allowed(&state, 6, 1, 0));
    }

    #[test]
    fn strict_two_block_lower_bound_blocks_donation() {
        // block 1 at exactly 96: donating 2 → 94 < 95 illegal; 1 → 95 legal.
        let g = graph_with_sizes(&[10, 94, 2]);
        let state = crate::state::PartitionState::from_assignment(&g, vec![0, 1, 1], 2);
        let r = regions(PassKind::TwoBlock, false);
        assert_eq!(state.block_size(1), 96);
        assert!(!r.move_allowed(&state, 2, 1, 0));
        assert!(r.move_allowed(&state, 1, 1, 0));
    }

    #[test]
    fn multi_block_lower_bound_is_loose() {
        let g = graph_with_sizes(&[10, 94, 2]);
        let state = crate::state::PartitionState::from_assignment(&g, vec![0, 1, 1], 2);
        let r = regions(PassKind::MultiBlock, false);
        // down to 30 is fine in multi-block passes.
        assert!(r.move_allowed(&state, 2, 1, 0));
    }

    #[test]
    fn block_level_gates() {
        let g = graph_with_sizes(&[10, 94, 2]);
        let state = crate::state::PartitionState::from_assignment(&g, vec![0, 1, 1], 2);
        let r = regions(PassKind::TwoBlock, false);
        assert!(r.can_donate(&state, 0)); // remainder always
        assert!(r.can_donate(&state, 1)); // 96 > 95
        assert!(r.can_receive(&state, 1)); // 96 < 105
        assert!(r.can_receive(&state, 0)); // remainder always

        let after_m = regions(PassKind::TwoBlock, true);
        // upper becomes 100; block 1 at 96 can still receive.
        assert!(after_m.can_receive(&state, 1));
    }

    #[test]
    fn ablated_regions_are_symmetric() {
        let config = FpartConfig { use_move_regions: false, ..FpartConfig::default() };
        let r = MoveRegions::new(
            &config,
            DeviceConstraints::new(100, 50),
            PassKind::TwoBlock,
            0,
            false,
        );
        let g = graph_with_sizes(&[60, 40, 100]);
        let state = crate::state::PartitionState::from_assignment(&g, vec![0, 0, 1], 2);
        // no lower bound: block 1 may donate its whole content as long as
        // the receiver fits (100 + 5 = 105 ≤ 105)…
        assert_eq!(r.lower_bound(), 0);
        assert!(r.move_allowed(&state, 5, 1, 0));
        // …but the remainder is capped like everyone else (100 + 40 > 105).
        assert!(!r.move_allowed(&state, 40, 1, 0));
    }
}
