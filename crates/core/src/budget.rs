//! Cooperative execution control: deadlines, pass/move budgets, cancel
//! tokens, and deterministic fault injection.
//!
//! The driver's outer loop (peel-one-block recursion with scheduled
//! improvement passes) has unbounded worst-case runtime: pass counts
//! depend on netlist structure and the dual solution stacks can restart
//! improvement repeatedly. A [`RunBudget`] bounds that work
//! cooperatively — it is *checked* at pass and peel boundaries rather
//! than preempting anything, so a stop always lands at a consistent
//! state and the driver can return the best solution seen so far.
//!
//! Design mirrors the zero-overhead observability layer ([`crate::obs`]):
//! an unlimited budget compiles down to a single predictable branch per
//! boundary — no clock reads, no atomics. Only a budget that actually
//! limits something (or carries a [`FaultPlan`]) pays for its checks.
//!
//! [`FaultPlan`] is the deterministic fault-injection hook used by the
//! robustness test-suite: it can panic, sleep, or force budget expiry at
//! chosen pass boundaries, optionally targeting a single restart index,
//! so degradation paths are exercised without wall-clock flakiness.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a partitioning run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Completion {
    /// The search ran to its natural end; no budget limit intervened.
    #[default]
    Complete,
    /// The wall-clock deadline expired; the result is the best solution
    /// found before the nearest pass or peel boundary after expiry.
    DeadlineExpired,
    /// A [`CancelToken`] was triggered (e.g. SIGINT in the CLI).
    Cancelled,
    /// The run was cut short by a discrete budget (max passes / max
    /// moves) or lost some restarts to panics but still produced a
    /// usable merged result.
    Degraded,
}

impl Completion {
    /// Stable `snake_case` name used in metrics JSON and CLI output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Completion::Complete => "complete",
            Completion::DeadlineExpired => "deadline_expired",
            Completion::Cancelled => "cancelled",
            Completion::Degraded => "degraded",
        }
    }

    /// Severity rank used when merging statuses across restarts:
    /// `Cancelled > DeadlineExpired > Degraded > Complete`.
    #[must_use]
    fn severity(self) -> u8 {
        match self {
            Completion::Complete => 0,
            Completion::Degraded => 1,
            Completion::DeadlineExpired => 2,
            Completion::Cancelled => 3,
        }
    }

    /// The more severe of two statuses (used to fold restart outcomes
    /// into a report-level status).
    #[must_use]
    pub fn worst(self, other: Completion) -> Completion {
        if other.severity() > self.severity() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Completion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared cancellation flag checked at pass and peel boundaries.
///
/// Cloning shares the flag; equality is pointer identity (two tokens
/// are equal iff cancelling one cancels the other).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: TokenInner,
}

#[derive(Debug, Clone)]
enum TokenInner {
    Shared(Arc<AtomicBool>),
    Static(&'static AtomicBool),
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken { inner: TokenInner::Shared(Arc::new(AtomicBool::new(false))) }
    }

    /// Wraps a `'static` flag (e.g. one set by a signal handler).
    #[must_use]
    pub fn from_static(flag: &'static AtomicBool) -> CancelToken {
        CancelToken { inner: TokenInner::Static(flag) }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.flag().store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag().load(Ordering::SeqCst)
    }

    fn flag(&self) -> &AtomicBool {
        match &self.inner {
            TokenInner::Shared(arc) => arc,
            TokenInner::Static(flag) => flag,
        }
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        match (&self.inner, &other.inner) {
            (TokenInner::Shared(a), TokenInner::Shared(b)) => Arc::ptr_eq(a, b),
            (TokenInner::Static(a), TokenInner::Static(b)) => std::ptr::eq(*a, *b),
            _ => false,
        }
    }
}

/// Declarative execution budget for a partitioning run.
///
/// The default is unlimited: every field `None` costs exactly one branch
/// per pass/peel boundary and never reads the clock.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunBudget {
    /// Wall-clock deadline measured from the start of the run.
    pub deadline: Option<Duration>,
    /// Maximum number of FM passes across the whole run.
    pub max_passes: Option<u64>,
    /// Maximum number of applied moves across the whole run (enforced
    /// at the next pass boundary, so a pass in flight completes).
    pub max_moves: Option<u64>,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: Option<CancelToken>,
}

impl RunBudget {
    /// Whether no limit of any kind is configured.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_passes.is_none()
            && self.max_moves.is_none()
            && self.cancel.is_none()
    }
}

/// A single injected fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Panic with the given message (exercises panic isolation).
    Panic(String),
    /// Sleep for the given duration (exercises deadline handling).
    Delay(Duration),
    /// Force the budget to report expiry (deterministic stand-in for a
    /// wall-clock deadline).
    ExpireBudget,
}

/// Deterministic fault-injection schedule, keyed by pass boundary.
///
/// Installed through [`crate::FpartConfig`] / [`crate::fm::FmConfig`];
/// when absent the budget tracker's fast path never looks at it, so
/// production runs pay nothing (mirroring the zero-overhead obs design).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// When set, the plan only applies to this restart index; other
    /// restarts run fault-free. `None` applies to every restart (a
    /// direct, non-restart run counts as restart 0).
    pub only_restart: Option<usize>,
    /// When set, the plan fires only inside the intra-run worker job
    /// with this index (a boundary-refinement pair job spawned by
    /// [`BudgetTracker::fork_worker`]); the run-level schedule stays
    /// fault-free. Worker jobs count their own pass boundaries from
    /// zero, so `at_pass` is relative to the job, which keeps the
    /// injection point deterministic at any thread count.
    pub only_pair_job: Option<usize>,
    /// `(pass boundary, action)` pairs; boundaries are 1-based counts
    /// of pass starts within a run. Multiple entries may share a
    /// boundary and fire in order.
    pub at_pass: Vec<(u64, FaultAction)>,
}

impl FaultPlan {
    /// A plan that panics with `message` at the given pass boundary.
    #[must_use]
    pub fn panic_at(pass: u64, message: &str) -> FaultPlan {
        FaultPlan {
            only_restart: None,
            only_pair_job: None,
            at_pass: vec![(pass, FaultAction::Panic(message.into()))],
        }
    }

    /// A plan that sleeps for `delay` at the given pass boundary.
    #[must_use]
    pub fn delay_at(pass: u64, delay: Duration) -> FaultPlan {
        FaultPlan {
            only_restart: None,
            only_pair_job: None,
            at_pass: vec![(pass, FaultAction::Delay(delay))],
        }
    }

    /// A plan that forces budget expiry at the given pass boundary.
    #[must_use]
    pub fn expire_at(pass: u64) -> FaultPlan {
        FaultPlan {
            only_restart: None,
            only_pair_job: None,
            at_pass: vec![(pass, FaultAction::ExpireBudget)],
        }
    }

    /// Restricts the plan to a single restart index (builder style).
    #[must_use]
    pub fn for_only_restart(mut self, restart: usize) -> FaultPlan {
        self.only_restart = Some(restart);
        self
    }

    /// Restricts the plan to a single intra-run worker job index
    /// (builder style). The schedule then fires only inside that
    /// boundary-refinement pair job, never at the run level.
    #[must_use]
    pub fn for_only_pair_job(mut self, job: usize) -> FaultPlan {
        self.only_pair_job = Some(job);
        self
    }

    /// The plan as seen by restart `restart`: `None` when the plan
    /// targets a different restart, otherwise the schedule itself.
    #[must_use]
    pub fn for_restart(&self, restart: usize) -> Option<FaultPlan> {
        match self.only_restart {
            Some(only) if only != restart => None,
            _ => Some(FaultPlan {
                only_restart: None,
                only_pair_job: self.only_pair_job,
                at_pass: self.at_pass.clone(),
            }),
        }
    }
}

/// Declarative cap on estimated memory used by hierarchy construction.
///
/// The multilevel flow's dominant allocation is the coarsening hierarchy:
/// every level stores a full coarse hypergraph plus projection maps. A
/// `MemoryBudget` bounds the *estimated* bytes of that hierarchy
/// ([`fpart_hypergraph::Hypergraph::approx_bytes`] per level); when the
/// next level would exceed the cap, coarsening simply stops at the
/// current depth and the run continues on a shallower hierarchy,
/// reporting [`Completion::Degraded`] — graceful degradation instead of
/// an OOM kill. The default (`None`) costs nothing and changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBudget {
    /// Estimated-byte cap for hierarchy construction; `None` = unlimited.
    pub max_bytes: Option<u64>,
}

impl MemoryBudget {
    /// A budget capped at `max_bytes` estimated bytes.
    #[must_use]
    pub fn capped(max_bytes: u64) -> MemoryBudget {
        MemoryBudget { max_bytes: Some(max_bytes) }
    }

    /// Whether no cap is configured.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.max_bytes.is_none()
    }
}

/// Which limit stopped a run first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopKind {
    Cancelled,
    Deadline,
    PassBudget,
    MoveBudget,
}

impl StopKind {
    /// Encodes the latched stop for the tracker's `AtomicU8` cell
    /// (`0` = no stop). [`StopKind::decode`] is the inverse.
    fn encode(kind: Option<StopKind>) -> u8 {
        match kind {
            None => 0,
            Some(StopKind::Cancelled) => 1,
            Some(StopKind::Deadline) => 2,
            Some(StopKind::PassBudget) => 3,
            Some(StopKind::MoveBudget) => 4,
        }
    }

    fn decode(raw: u8) -> Option<StopKind> {
        match raw {
            1 => Some(StopKind::Cancelled),
            2 => Some(StopKind::Deadline),
            3 => Some(StopKind::PassBudget),
            4 => Some(StopKind::MoveBudget),
            _ => None,
        }
    }
}

/// A point-in-time view of how much budget a run has left, exposed to
/// progress heartbeats (see [`BudgetTracker::remaining`]). `None`
/// fields mean the corresponding limit is not set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetSnapshot {
    /// Wall-clock time until the deadline (zero once expired).
    pub deadline_remaining: Option<Duration>,
    /// FM passes left before the pass cap stops the run.
    pub passes_remaining: Option<u64>,
    /// Moves left before the move cap stops the run.
    pub moves_remaining: Option<u64>,
}

/// Per-run budget enforcement state, shared immutably through
/// [`crate::engine::ImproveContext`] (interior mutability keeps the
/// engine's borrow structure unchanged). The counters are relaxed
/// atomics so a tracker is `Sync`: intra-run worker forks (see
/// [`BudgetTracker::fork_worker`]) can be handed to scoped threads,
/// while single-thread use compiles to the same uncontended loads and
/// stores the old `Cell` fields did.
///
/// Each restart builds its own tracker, so parallel restarts never share
/// mutable state and deterministic merging is preserved.
#[derive(Debug)]
pub struct BudgetTracker {
    /// Fast-path guard: `false` means every check is a single branch.
    limited: bool,
    deadline: Option<Instant>,
    max_passes: Option<u64>,
    max_moves: Option<u64>,
    cancel: Option<CancelToken>,
    faults: Vec<(u64, FaultAction)>,
    /// Worker-targeted schedule: fires only inside the intra-run pair
    /// job with the stored index (routed there by `fork_worker`), never
    /// at the run level.
    pair_faults: Option<(usize, Vec<(u64, FaultAction)>)>,
    passes: AtomicU64,
    moves: AtomicU64,
    faults_injected: AtomicU64,
    forced_expiry: AtomicBool,
    stop: AtomicU8,
}

impl BudgetTracker {
    /// Builds a tracker for one run. The deadline clock starts now; an
    /// unlimited budget with no faults never reads the clock at all.
    #[must_use]
    pub fn new(budget: &RunBudget, faults: Option<FaultPlan>) -> BudgetTracker {
        let (faults, pair_faults) = match faults {
            Some(plan) => match plan.only_pair_job {
                Some(job) => (Vec::new(), Some((job, plan.at_pass))),
                None => (plan.at_pass, None),
            },
            None => (Vec::new(), None),
        };
        let limited = !budget.is_unlimited() || !faults.is_empty();
        BudgetTracker {
            limited,
            deadline: budget.deadline.map(|d| Instant::now() + d),
            max_passes: budget.max_passes,
            max_moves: budget.max_moves,
            cancel: budget.cancel.clone(),
            faults,
            pair_faults,
            passes: AtomicU64::new(0),
            moves: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            forced_expiry: AtomicBool::new(false),
            stop: AtomicU8::new(0),
        }
    }

    /// Forks a worker-local tracker for intra-run pair job `pair_job`.
    ///
    /// The fork snapshots the *remaining* discrete budgets (so a round
    /// of pair jobs forked before fan-out all see the same caps — the
    /// snapshot, and therefore the partition result, is independent of
    /// thread count), shares the absolute deadline and cancel token,
    /// and receives the worker-targeted fault schedule iff its index
    /// matches. Consumption is folded back with [`BudgetTracker::absorb`]
    /// in a fixed job order.
    #[must_use]
    pub fn fork_worker(&self, pair_job: usize) -> BudgetTracker {
        let faults = match &self.pair_faults {
            Some((only, plan)) if *only == pair_job => plan.clone(),
            _ => Vec::new(),
        };
        let limited = self.limited || !faults.is_empty();
        BudgetTracker {
            limited,
            deadline: self.deadline,
            max_passes: self.max_passes.map(|cap| cap.saturating_sub(self.passes())),
            max_moves: self
                .max_moves
                .map(|cap| cap.saturating_sub(self.moves.load(Ordering::Relaxed))),
            cancel: self.cancel.clone(),
            faults,
            pair_faults: None,
            passes: AtomicU64::new(0),
            moves: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            forced_expiry: AtomicBool::new(false),
            stop: AtomicU8::new(0),
        }
    }

    /// Folds a worker fork's consumption back into this tracker. Called
    /// once per job, in job-index order, after the fan-out joins —
    /// counts accumulate deterministically and a worker's forced expiry
    /// propagates, then the merged state is re-evaluated so discrete
    /// budgets latch at the same boundary regardless of thread count.
    pub fn absorb(&self, worker: &BudgetTracker) {
        self.passes.fetch_add(worker.passes.load(Ordering::Relaxed), Ordering::Relaxed);
        self.moves.fetch_add(worker.moves.load(Ordering::Relaxed), Ordering::Relaxed);
        self.faults_injected
            .fetch_add(worker.faults_injected.load(Ordering::Relaxed), Ordering::Relaxed);
        if worker.forced_expiry.load(Ordering::Relaxed) {
            self.forced_expiry.store(true, Ordering::Relaxed);
        }
        // Re-evaluate even for an unlimited parent when a worker forced
        // expiry, so the fault-injected stop is visible in `completion`.
        if self.limited || self.forced_expiry.load(Ordering::Relaxed) {
            self.evaluate();
        }
    }

    /// A tracker that never stops anything (the default for callers
    /// that do not thread a budget).
    #[must_use]
    pub fn unlimited() -> BudgetTracker {
        BudgetTracker::new(&RunBudget::default(), None)
    }

    /// Pass-boundary hook: counts the pass about to start, injects any
    /// scheduled faults, then evaluates the stop condition. Returns
    /// `true` when the pass must **not** run.
    ///
    /// # Panics
    ///
    /// Panics when the fault plan schedules [`FaultAction::Panic`] at
    /// this boundary (that is the point of the hook).
    pub fn before_pass(&self) -> bool {
        if !self.limited {
            return false;
        }
        let pass = self.passes.load(Ordering::Relaxed) + 1;
        self.passes.store(pass, Ordering::Relaxed);
        for (at, action) in &self.faults {
            if *at != pass {
                continue;
            }
            self.faults_injected.fetch_add(1, Ordering::Relaxed);
            match action {
                FaultAction::Panic(message) => panic!("injected fault: {message}"),
                FaultAction::Delay(delay) => std::thread::sleep(*delay),
                FaultAction::ExpireBudget => self.forced_expiry.store(true, Ordering::Relaxed),
            }
        }
        self.evaluate()
    }

    /// Records `n` applied moves (enforced at the next boundary check).
    pub fn add_moves(&self, n: u64) {
        if self.limited {
            self.moves.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Peel-boundary / restart-boundary hook: evaluates the stop
    /// condition without counting a pass. Returns `true` once stopped.
    pub fn check(&self) -> bool {
        if !self.limited {
            return false;
        }
        self.evaluate()
    }

    /// Whether a stop has already been latched (never un-latches).
    #[must_use]
    pub fn stopped(&self) -> bool {
        StopKind::decode(self.stop.load(Ordering::Relaxed)).is_some()
    }

    /// Completion status implied by the latched stop reason.
    #[must_use]
    pub fn completion(&self) -> Completion {
        match StopKind::decode(self.stop.load(Ordering::Relaxed)) {
            None => Completion::Complete,
            Some(StopKind::Cancelled) => Completion::Cancelled,
            Some(StopKind::Deadline) => Completion::DeadlineExpired,
            Some(StopKind::PassBudget | StopKind::MoveBudget) => Completion::Degraded,
        }
    }

    /// Number of faults injected so far (for the metrics layer).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Pass boundaries crossed so far.
    #[must_use]
    pub fn passes(&self) -> u64 {
        self.passes.load(Ordering::Relaxed)
    }

    /// Snapshot of the remaining budget headroom, for progress
    /// heartbeats. Reads the clock only when a deadline is set —
    /// callers invoke this at heartbeat cadence, never per move.
    #[must_use]
    pub fn remaining(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            deadline_remaining: self
                .deadline
                .map(|at| at.saturating_duration_since(Instant::now())),
            passes_remaining: self
                .max_passes
                .map(|cap| cap.saturating_sub(self.passes.load(Ordering::Relaxed))),
            moves_remaining: self
                .max_moves
                .map(|cap| cap.saturating_sub(self.moves.load(Ordering::Relaxed))),
        }
    }

    /// Latches the first limit violated, in severity order (cancel
    /// before deadline before discrete budgets), and reports whether
    /// the run must stop.
    fn evaluate(&self) -> bool {
        if self.stopped() {
            return true;
        }
        let kind = if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            Some(StopKind::Cancelled)
        } else if self.forced_expiry.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|at| Instant::now() >= at)
        {
            Some(StopKind::Deadline)
        } else if self.max_passes.is_some_and(|cap| self.passes.load(Ordering::Relaxed) > cap) {
            Some(StopKind::PassBudget)
        } else if self.max_moves.is_some_and(|cap| self.moves.load(Ordering::Relaxed) >= cap) {
            Some(StopKind::MoveBudget)
        } else {
            None
        };
        self.stop.store(StopKind::encode(kind), Ordering::Relaxed);
        kind.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_tracker_never_stops() {
        let tracker = BudgetTracker::unlimited();
        for _ in 0..1000 {
            assert!(!tracker.before_pass());
        }
        assert!(!tracker.check());
        assert!(!tracker.stopped());
        assert_eq!(tracker.completion(), Completion::Complete);
        // The fast path does not even count passes.
        assert_eq!(tracker.passes(), 0);
    }

    #[test]
    fn pass_budget_stops_after_cap() {
        let budget = RunBudget { max_passes: Some(3), ..RunBudget::default() };
        let tracker = BudgetTracker::new(&budget, None);
        assert!(!tracker.before_pass());
        assert!(!tracker.before_pass());
        assert!(!tracker.before_pass());
        assert!(tracker.before_pass(), "fourth pass exceeds the cap");
        assert_eq!(tracker.completion(), Completion::Degraded);
        // The stop latches: later checks still report stopped.
        assert!(tracker.check());
    }

    #[test]
    fn move_budget_enforced_at_next_boundary() {
        let budget = RunBudget { max_moves: Some(10), ..RunBudget::default() };
        let tracker = BudgetTracker::new(&budget, None);
        assert!(!tracker.before_pass());
        tracker.add_moves(10);
        assert!(tracker.before_pass());
        assert_eq!(tracker.completion(), Completion::Degraded);
    }

    #[test]
    fn cancel_token_is_shared_and_latched() {
        let token = CancelToken::new();
        let budget = RunBudget { cancel: Some(token.clone()), ..RunBudget::default() };
        let tracker = BudgetTracker::new(&budget, None);
        assert!(!tracker.check());
        token.cancel();
        assert!(tracker.check());
        assert_eq!(tracker.completion(), Completion::Cancelled);
    }

    #[test]
    fn cancel_token_equality_is_pointer_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn forced_expiry_reports_deadline() {
        let tracker = BudgetTracker::new(&RunBudget::default(), Some(FaultPlan::expire_at(2)));
        assert!(!tracker.before_pass());
        assert!(tracker.before_pass());
        assert_eq!(tracker.completion(), Completion::DeadlineExpired);
        assert_eq!(tracker.faults_injected(), 1);
    }

    #[test]
    fn injected_panic_fires_at_chosen_boundary() {
        let tracker =
            BudgetTracker::new(&RunBudget::default(), Some(FaultPlan::panic_at(2, "boom")));
        assert!(!tracker.before_pass());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tracker.before_pass()))
            .expect_err("must panic");
        let message = err.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("boom"), "{message}");
    }

    #[test]
    fn cancel_outranks_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget {
            deadline: Some(Duration::ZERO),
            cancel: Some(token),
            ..RunBudget::default()
        };
        let tracker = BudgetTracker::new(&budget, None);
        assert!(tracker.check());
        assert_eq!(tracker.completion(), Completion::Cancelled);
    }

    #[test]
    fn fault_plan_restart_filtering() {
        let plan = FaultPlan::panic_at(1, "x").for_only_restart(2);
        assert!(plan.for_restart(0).is_none());
        assert!(plan.for_restart(1).is_none());
        let own = plan.for_restart(2).expect("applies to restart 2");
        assert_eq!(own.only_restart, None);
        assert_eq!(own.at_pass.len(), 1);

        let broadcast = FaultPlan::expire_at(3);
        assert!(broadcast.for_restart(0).is_some());
        assert!(broadcast.for_restart(7).is_some());
    }

    #[test]
    fn tracker_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<BudgetTracker>();
    }

    #[test]
    fn fork_snapshots_remaining_budget_and_absorb_folds_back() {
        let budget =
            RunBudget { max_passes: Some(10), max_moves: Some(100), ..RunBudget::default() };
        let tracker = BudgetTracker::new(&budget, None);
        assert!(!tracker.before_pass());
        tracker.add_moves(40);

        let worker = tracker.fork_worker(0);
        // The fork sees what is left: 9 passes, 60 moves.
        for _ in 0..9 {
            assert!(!worker.before_pass());
        }
        assert!(worker.before_pass(), "tenth worker pass exceeds the forked cap");
        worker.add_moves(5);

        tracker.absorb(&worker);
        assert_eq!(tracker.passes(), 11);
        assert!(tracker.check(), "absorbed passes push the parent over its cap");
        assert_eq!(tracker.completion(), Completion::Degraded);
    }

    #[test]
    fn pair_job_faults_fire_only_in_matching_fork() {
        let plan = FaultPlan::expire_at(1).for_only_pair_job(2);
        let tracker = BudgetTracker::new(&RunBudget::default(), Some(plan));
        // The run-level tracker never fires the worker-targeted fault.
        assert!(!tracker.before_pass());
        assert_eq!(tracker.faults_injected(), 0);

        let other = tracker.fork_worker(1);
        assert!(!other.before_pass());
        assert_eq!(other.faults_injected(), 0);

        let target = tracker.fork_worker(2);
        assert!(target.before_pass(), "fault forces expiry on its first pass");
        assert_eq!(target.faults_injected(), 1);
        assert_eq!(target.completion(), Completion::DeadlineExpired);

        // Absorbing the faulted worker propagates the stop to the run.
        tracker.absorb(&other);
        assert_eq!(tracker.completion(), Completion::Complete);
        tracker.absorb(&target);
        assert_eq!(tracker.faults_injected(), 1);
        assert_eq!(tracker.completion(), Completion::DeadlineExpired);
    }

    #[test]
    fn pair_panic_fires_inside_fork() {
        let plan = FaultPlan::panic_at(1, "pair boom").for_only_pair_job(0);
        let tracker = BudgetTracker::new(&RunBudget::default(), Some(plan));
        assert!(!tracker.before_pass());
        let worker = tracker.fork_worker(0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.before_pass()))
            .expect_err("must panic");
        let message = err.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("pair boom"), "{message}");
        // The worker tracker survives the unwind with its count intact.
        tracker.absorb(&worker);
        assert_eq!(tracker.faults_injected(), 1);
    }

    #[test]
    fn completion_merge_severity() {
        use Completion::{Cancelled, Complete, DeadlineExpired, Degraded};
        assert_eq!(Complete.worst(Degraded), Degraded);
        assert_eq!(Degraded.worst(Complete), Degraded);
        assert_eq!(DeadlineExpired.worst(Degraded), DeadlineExpired);
        assert_eq!(Cancelled.worst(DeadlineExpired), Cancelled);
        assert_eq!(Complete.worst(Complete), Complete);
    }
}
