//! Wire protocol of the partition server: JSON-Lines requests in,
//! typed JSON-Lines responses out.
//!
//! Every request is one line holding one JSON object with a
//! client-supplied `"id"` and a `"cmd"`; every reply names the request
//! it answers. Three reply shapes exist:
//!
//! * `{"id": .., "ok": true, "result": {..}}` — final success;
//! * `{"id": .., "ok": false, "error": {"code": .., "message": ..}}` —
//!   typed failure (malformed input **never** disconnects);
//! * `{"id": .., "event": ..}` — interim notification (`queued`,
//!   `progress`); zero or more precede the final reply.
//!
//! The server opens each connection with a banner line
//! (`{"event": "hello", ..}`) carrying [`PROTOCOL_VERSION`] and
//! [`crate::obs::SCHEMA_VERSION`] so clients can gate on both.
//!
//! Request decoding is hand-rolled on [`crate::json::Json`], mirroring
//! the workspace's dependency-free JSON policy, and the line reader
//! enforces [`fpart_hypergraph::ParseLimits::max_line_len`] *before*
//! buffering a hostile line.

use std::io::BufRead;

use crate::json::Json;

/// Version of the line protocol itself (independent of the metrics
/// schema): bumped when the request or reply grammar changes shape.
pub const PROTOCOL_VERSION: u32 = 1;

/// A typed protocol-level failure. Serialized into the `"error"`
/// object of a reply; receiving one never tears down the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable machine-readable code (`parse_error`, `bad_request`,
    /// `unknown_command`, `unknown_session`, `line_too_long`, `busy`,
    /// `duplicate_id`, `load_failed`, `run_failed`, `no_assignment`,
    /// `shutting_down`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    /// Builds an error with the given code and message.
    #[must_use]
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtocolError { code, message: message.into() }
    }
}

/// How a `partition` request runs the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Flat FPART search (the paper's driver).
    Fpart,
    /// Multilevel V-cycle (default: the mode that scales to the large
    /// warm-session circuits the server exists for).
    #[default]
    Multilevel,
}

impl Method {
    /// The wire spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Fpart => "fpart",
            Method::Multilevel => "multilevel",
        }
    }
}

/// Execution parameters shared by `partition` and `eco` requests. All
/// fields are optional on the wire; the defaults mirror the CLI's.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Independent restarts with consecutive seeds; best wins.
    pub restarts: usize,
    /// Worker budget for this request, clamped to the server's
    /// `--threads` total (`None` → the full server budget).
    pub threads: Option<usize>,
    /// Overrides [`crate::FpartConfig::seed`] for this request.
    pub seed: Option<u64>,
    /// Per-request wall-clock deadline, wired into
    /// [`crate::RunBudget::deadline`].
    pub deadline_ms: Option<u64>,
    /// FM pass budget ([`crate::RunBudget::max_passes`]).
    pub max_passes: Option<u64>,
    /// Applied-move budget ([`crate::RunBudget::max_moves`]).
    pub max_moves: Option<u64>,
    /// Engine selection (default [`Method::Multilevel`]).
    pub method: Method,
    /// Stream throttled `progress` events while running (honored when
    /// `restarts` is 1, where the streamed run is bit-identical to the
    /// unobserved one).
    pub progress: bool,
    /// Write the winning assignment to this path (atomic
    /// temp-fsync-rename, versioned format).
    pub output: Option<String>,
    /// Inline the full per-node assignment array in the result.
    pub return_assignment: bool,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            restarts: 1,
            threads: None,
            seed: None,
            deadline_ms: None,
            max_passes: None,
            max_moves: None,
            method: Method::default(),
            progress: false,
            output: None,
            return_assignment: false,
        }
    }
}

/// Where an `eco` request's edit script comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditSource {
    /// JSON-Lines edit operations embedded in the request (newlines
    /// escaped as `\n` inside the JSON string).
    Inline(String),
    /// Path of a JSON-Lines edit script on the server's filesystem.
    Path(String),
}

/// A decoded request, minus its `id` (returned separately so error
/// replies can echo it even when the body is invalid).
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Parse a netlist once and bind it to a named session.
    Load {
        /// Session name (created or replaced).
        session: String,
        /// Netlist path (`.fhg` / `.hgr` / `.blif` by extension).
        path: String,
        /// Device catalog name (alternative to `s_max`/`t_max`).
        device: Option<String>,
        /// Custom device size cap.
        s_max: Option<u64>,
        /// Custom device terminal cap.
        t_max: Option<usize>,
        /// Filling ratio applied to a catalog device (default 0.9).
        delta: f64,
    },
    /// Partition a loaded session's netlist.
    Partition {
        /// Target session.
        session: String,
        /// Execution parameters.
        params: RunParams,
    },
    /// Apply an edit script to a session and repair its last
    /// partition (ECO flow).
    Eco {
        /// Target session.
        session: String,
        /// The edit script.
        edits: EditSource,
        /// Execution parameters.
        params: RunParams,
    },
    /// Inspect one session (or list all when `session` is absent).
    Query {
        /// Session to inspect; `None` lists all sessions.
        session: Option<String>,
    },
    /// Cooperatively cancel an in-flight or queued request by its id.
    Cancel {
        /// The `id` of the request to cancel.
        target: String,
    },
    /// Cancel everything, refuse new work, and close.
    Shutdown,
}

fn get_str(doc: &Json, key: &str) -> Result<Option<String>, ProtocolError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(ProtocolError::new("bad_request", format!("`{key}` must be a string"))),
    }
}

fn get_u64(doc: &Json, key: &str) -> Result<Option<u64>, ProtocolError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(value) => value.as_u64().map(Some).ok_or_else(|| {
            ProtocolError::new("bad_request", format!("`{key}` must be a non-negative integer"))
        }),
    }
}

fn get_f64(doc: &Json, key: &str) -> Result<Option<f64>, ProtocolError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(ProtocolError::new("bad_request", format!("`{key}` must be a number"))),
    }
}

fn get_bool(doc: &Json, key: &str) -> Result<Option<bool>, ProtocolError> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ProtocolError::new("bad_request", format!("`{key}` must be a boolean"))),
    }
}

fn require_str(doc: &Json, key: &str) -> Result<String, ProtocolError> {
    get_str(doc, key)?.ok_or_else(|| ProtocolError::new("bad_request", format!("missing `{key}`")))
}

fn parse_params(doc: &Json) -> Result<RunParams, ProtocolError> {
    let method = match get_str(doc, "method")?.as_deref() {
        None | Some("multilevel") => Method::Multilevel,
        Some("fpart") => Method::Fpart,
        Some(other) => {
            return Err(ProtocolError::new(
                "bad_request",
                format!("unknown method `{other}` (expected `fpart` or `multilevel`)"),
            ))
        }
    };
    let restarts = get_u64(doc, "restarts")?.unwrap_or(1);
    if restarts == 0 {
        return Err(ProtocolError::new("bad_request", "`restarts` must be at least 1"));
    }
    Ok(RunParams {
        restarts: restarts as usize,
        threads: get_u64(doc, "threads")?.map(|n| n as usize),
        seed: get_u64(doc, "seed")?,
        deadline_ms: get_u64(doc, "deadline_ms")?,
        max_passes: get_u64(doc, "max_passes")?,
        max_moves: get_u64(doc, "max_moves")?,
        method,
        progress: get_bool(doc, "progress")?.unwrap_or(false),
        output: get_str(doc, "output")?,
        return_assignment: get_bool(doc, "assignment")?.unwrap_or(false),
    })
}

/// Decodes one request line. The request `id` is returned separately
/// (when one could be extracted) so the caller can echo it in error
/// replies for bodies that fail validation.
pub fn parse_request(line: &str) -> (Option<String>, Result<Command, ProtocolError>) {
    let doc = match Json::parse(line.trim()) {
        Ok(doc @ Json::Obj(_)) => doc,
        Ok(_) => {
            return (None, Err(ProtocolError::new("bad_request", "request must be a JSON object")))
        }
        Err(e) => return (None, Err(ProtocolError::new("parse_error", e))),
    };
    // Accept string or integer ids; reply lines always quote them.
    let id = match doc.get("id") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(Json::Num(n)) if n.fract() == 0.0 => Some(format!("{n:.0}")),
        _ => None,
    };
    let Some(ref _id) = id else {
        return (None, Err(ProtocolError::new("bad_request", "missing `id` (string or integer)")));
    };
    let command = decode_command(&doc);
    (id, command)
}

fn decode_command(doc: &Json) -> Result<Command, ProtocolError> {
    let cmd = require_str(doc, "cmd")?;
    match cmd.as_str() {
        "load" => {
            let delta = get_f64(doc, "delta")?.unwrap_or(0.9);
            if !(delta > 0.0 && delta <= 1.0) {
                return Err(ProtocolError::new("bad_request", "`delta` must be in (0, 1]"));
            }
            Ok(Command::Load {
                session: require_str(doc, "session")?,
                path: require_str(doc, "path")?,
                device: get_str(doc, "device")?,
                s_max: get_u64(doc, "s_max")?,
                t_max: get_u64(doc, "t_max")?.map(|n| n as usize),
                delta,
            })
        }
        "partition" => Ok(Command::Partition {
            session: require_str(doc, "session")?,
            params: parse_params(doc)?,
        }),
        "eco" => {
            let edits = match (get_str(doc, "edits")?, get_str(doc, "edits_path")?) {
                (Some(inline), None) => EditSource::Inline(inline),
                (None, Some(path)) => EditSource::Path(path),
                (Some(_), Some(_)) => {
                    return Err(ProtocolError::new(
                        "bad_request",
                        "give `edits` or `edits_path`, not both",
                    ))
                }
                (None, None) => {
                    return Err(ProtocolError::new(
                        "bad_request",
                        "missing `edits` (inline JSONL) or `edits_path`",
                    ))
                }
            };
            Ok(Command::Eco {
                session: require_str(doc, "session")?,
                edits,
                params: parse_params(doc)?,
            })
        }
        "query" => Ok(Command::Query { session: get_str(doc, "session")? }),
        "cancel" => Ok(Command::Cancel { target: require_str(doc, "target")? }),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(ProtocolError::new("unknown_command", format!("unknown command `{other}`"))),
    }
}

/// Escapes `text` as a JSON string literal, quotes included.
#[must_use]
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The banner line every connection starts with.
#[must_use]
pub fn hello_line() -> String {
    format!(
        "{{\"event\": \"hello\", \"server\": \"fpart\", \"protocol\": {PROTOCOL_VERSION}, \
         \"schema_version\": {}}}",
        crate::obs::SCHEMA_VERSION
    )
}

/// A final success reply. `result` must be a rendered JSON value.
#[must_use]
pub fn ok_line(id: &str, result: &str) -> String {
    format!("{{\"id\": {}, \"ok\": true, \"result\": {result}}}", json_string(id))
}

/// A final error reply (`id` is `null` when the line had none).
#[must_use]
pub fn error_line(id: Option<&str>, error: &ProtocolError) -> String {
    let id = id.map_or_else(|| "null".to_owned(), json_string);
    format!(
        "{{\"id\": {id}, \"ok\": false, \"error\": {{\"code\": \"{}\", \"message\": {}}}}}",
        error.code,
        json_string(&error.message)
    )
}

/// Interim ack for a request parked behind `position` earlier requests
/// in its session's queue.
#[must_use]
pub fn queued_line(id: &str, position: usize) -> String {
    format!("{{\"id\": {}, \"event\": \"queued\", \"position\": {position}}}", json_string(id))
}

/// Interim progress event wrapping one engine trace event (as rendered
/// by [`crate::obs::event_to_json`]).
#[must_use]
pub fn progress_line(id: &str, event_json: &str) -> String {
    format!("{{\"id\": {}, \"event\": \"progress\", \"data\": {event_json}}}", json_string(id))
}

/// Reads one `\n`-terminated line of at most `max_len` bytes.
///
/// * `Ok(None)` — end of stream (or `should_stop` turned true while
///   waiting on a read timeout);
/// * `Ok(Some(Err(..)))` — the line exceeded `max_len` or was not
///   UTF-8; it has been consumed through its newline, so the caller
///   can reply with a typed error and keep the connection;
/// * `Ok(Some(Ok(line)))` — one line, newline stripped.
///
/// Timeout-flavored I/O errors (`WouldBlock`, `TimedOut`) poll
/// `should_stop` and retry, so a socket with a read timeout observes
/// server shutdown without losing partially-read lines.
///
/// # Errors
///
/// Any other I/O error is fatal for the connection.
pub fn read_line_limited<R: BufRead>(
    reader: &mut R,
    max_len: usize,
    should_stop: &dyn Fn() -> bool,
) -> std::io::Result<Option<Result<String, ProtocolError>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if should_stop() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                if should_stop() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            if buf.is_empty() && !overflow {
                return Ok(None);
            }
            break;
        }
        if let Some(newline) = chunk.iter().position(|&b| b == b'\n') {
            if overflow || buf.len() + newline > max_len {
                overflow = true;
            } else {
                buf.extend_from_slice(&chunk[..newline]);
            }
            reader.consume(newline + 1);
            break;
        }
        let len = chunk.len();
        if overflow || buf.len() + len > max_len {
            overflow = true;
            buf.clear();
        } else {
            buf.extend_from_slice(chunk);
        }
        reader.consume(len);
    }
    if overflow {
        return Ok(Some(Err(ProtocolError::new(
            "line_too_long",
            format!("request line exceeds max_line_len ({max_len} bytes)"),
        ))));
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => {
            Ok(Some(Err(ProtocolError::new("parse_error", "request line is not valid UTF-8"))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_partition_with_params() {
        let (id, cmd) = parse_request(
            r#"{"id": "7", "cmd": "partition", "session": "s", "restarts": 3, "threads": 2,
                "seed": 9, "deadline_ms": 50, "progress": true, "method": "fpart"}"#,
        );
        assert_eq!(id.as_deref(), Some("7"));
        let Command::Partition { session, params } = cmd.unwrap() else { panic!("wrong command") };
        assert_eq!(session, "s");
        assert_eq!(params.restarts, 3);
        assert_eq!(params.threads, Some(2));
        assert_eq!(params.seed, Some(9));
        assert_eq!(params.deadline_ms, Some(50));
        assert!(params.progress);
        assert_eq!(params.method, Method::Fpart);
    }

    #[test]
    fn integer_ids_are_accepted() {
        let (id, cmd) = parse_request(r#"{"id": 12, "cmd": "shutdown"}"#);
        assert_eq!(id.as_deref(), Some("12"));
        assert_eq!(cmd.unwrap(), Command::Shutdown);
    }

    #[test]
    fn typed_errors_for_malformed_requests() {
        let (id, cmd) = parse_request("{nope");
        assert!(id.is_none());
        assert_eq!(cmd.unwrap_err().code, "parse_error");

        let (_, cmd) = parse_request(r#"{"id": "1", "cmd": "sing"}"#);
        assert_eq!(cmd.unwrap_err().code, "unknown_command");

        let (_, cmd) = parse_request(r#"{"cmd": "query"}"#);
        assert_eq!(cmd.unwrap_err().code, "bad_request");

        let (id, cmd) = parse_request(r#"{"id": "2", "cmd": "partition"}"#);
        assert_eq!(id.as_deref(), Some("2"));
        assert_eq!(cmd.unwrap_err().code, "bad_request");

        let (_, cmd) =
            parse_request(r#"{"id": "3", "cmd": "partition", "session": "s", "restarts": 0}"#);
        assert_eq!(cmd.unwrap_err().code, "bad_request");
    }

    #[test]
    fn line_reader_enforces_the_limit_and_resyncs() {
        let text = format!("{}\nshort\n", "x".repeat(64));
        let mut reader = std::io::BufReader::with_capacity(8, text.as_bytes());
        let never = || false;
        let first = read_line_limited(&mut reader, 16, &never).unwrap().unwrap();
        assert_eq!(first.unwrap_err().code, "line_too_long");
        let second = read_line_limited(&mut reader, 16, &never).unwrap().unwrap();
        assert_eq!(second.unwrap(), "short");
        assert!(read_line_limited(&mut reader, 16, &never).unwrap().is_none());
    }

    #[test]
    fn reply_builders_escape_ids() {
        let err = ProtocolError::new("bad_request", "broken \"quote\"");
        let line = error_line(Some("a\"b"), &err);
        assert!(line.contains("\"a\\\"b\""), "{line}");
        assert!(line.contains("\\\"quote\\\""), "{line}");
        assert!(error_line(None, &err).contains("\"id\": null"));
        assert!(ok_line("1", "{}").contains("\"ok\": true"));
    }
}
