//! Long-running partition server: parse once, partition many times.
//!
//! [`Server`] keeps named **sessions** — a parsed netlist plus its
//! device constraints, last assignment, and merged metrics — and
//! answers JSON-Lines requests ([`protocol`]) over stdio
//! ([`Server::serve`]) or a Unix socket ([`Server::serve_unix`]).
//! Warm requests skip the dominant parse cost of one-shot CLI runs,
//! which is the point: an interactive floorplanning loop can `load` a
//! netlist once and then iterate `partition` / `eco` calls against it.
//!
//! Guarantees:
//!
//! * **Determinism** — a protocol `partition` is bit-identical to the
//!   library's [`crate::partition_multilevel_restarts`] (or
//!   [`crate::partition_restarts`]) with the same seed, restarts, and
//!   config, at any thread count; streaming progress does not perturb
//!   the search.
//! * **Typed failure** — malformed lines, unknown commands, unknown
//!   sessions, and oversized lines produce error replies, never a
//!   disconnect or a panic.
//! * **Backpressure** — each session runs one request at a time from a
//!   bounded queue; an overflowing submit is refused with a `busy`
//!   error and a parked one is acknowledged with a `queued` event.
//! * **Cooperative cancellation** — `cancel` flips the target
//!   request's [`CancelToken`]; the engine stops at the next pass/peel
//!   boundary and the reply reports how far it got (its `completion`).
//!
//! The worker budget is shared: each request's `threads` is clamped to
//! the server's total and split across restarts and intra-run stages
//! by [`crate::split_thread_budget`], exactly like the CLI.

pub mod protocol;

pub use protocol::{Command, EditSource, Method, ProtocolError, RunParams, PROTOCOL_VERSION};

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fpart_device::{Device, DeviceConstraints};
use fpart_hypergraph::{
    apply_script, fingerprint_graph, EditScript, Fingerprint, Hypergraph, ParseLimits,
};

use crate::budget::{CancelToken, Completion, RunBudget};
use crate::config::FpartConfig;
use crate::driver::{partition_observed, partition_restarts_observed, RestartsReport};
use crate::eco::{repartition_eco_restarts_observed, EcoConfig};
use crate::multilevel::{
    partition_multilevel_observed, partition_multilevel_restarts_observed, split_thread_budget,
    MultilevelConfig,
};
use crate::obs::{event_to_json, Counter, EventSink, Heartbeat, Metrics, Observer};
use crate::persist::write_atomic;
use crate::trace::TraceEvent;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Total worker budget shared by every concurrent request
    /// (default 1; the CLI maps `--threads` here).
    pub threads: usize,
    /// Requests one session may hold queued behind the running one
    /// before submits are refused with `busy` (default 4).
    pub queue_capacity: usize,
    /// Resource limits for netlist and edit-script parsing; the
    /// protocol reader also enforces
    /// [`ParseLimits::max_line_len`] per request line.
    pub limits: ParseLimits,
    /// Throttle interval for streamed `progress` events, milliseconds
    /// (default 200).
    pub heartbeat_ms: u64,
    /// External stop flag (e.g. the CLI's signal handler): when it
    /// flips, the server shuts down as if a `shutdown` request had
    /// arrived.
    pub stop: Option<CancelToken>,
    /// Shared memoization store (hierarchy cache + solution memo,
    /// see [`crate::memo`]) handed to every run. On by default — warm
    /// repeated requests are the server's reason to exist; `None`
    /// (the CLI's `--no-cache`) turns all caching off. Results are
    /// bit-identical either way.
    pub memo: Option<Arc<crate::memo::MemoStore>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 1,
            queue_capacity: 4,
            limits: ParseLimits::default(),
            heartbeat_ms: 200,
            stop: None,
            memo: Some(crate::memo::MemoStore::shared()),
        }
    }
}

/// One loaded netlist with its partitioning history.
struct Session {
    graph: Arc<Hypergraph>,
    constraints: DeviceConstraints,
    path: String,
    /// Zobrist fingerprint of `graph`: computed once in O(pins) at
    /// `load` and maintained through `eco` in O(edit) via
    /// [`fpart_hypergraph::EditApplied::fingerprint_delta`].
    fingerprint: Fingerprint,
    /// Assignment of the most recent successful run (indexes `graph`).
    last: Option<Vec<u32>>,
    /// Block count of `last`.
    blocks: usize,
    /// Metrics merged across every request served on this session,
    /// including the `server_requests` / `server_cancelled` counters.
    totals: Metrics,
    /// Requests served (successful runs).
    requests: u64,
}

/// A sessionful partition server. See the [module docs](self).
pub struct Server {
    config: ServerConfig,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    inflight: Mutex<HashMap<String, CancelToken>>,
    shutdown: AtomicBool,
}

/// A partition or eco job parked in a session's queue.
struct Job {
    id: String,
    name: String,
    session: Arc<Mutex<Session>>,
    kind: JobKind,
    params: RunParams,
    cancel: CancelToken,
}

enum JobKind {
    Partition,
    Eco(EditScript),
}

/// A lazily-spawned per-session worker: the submit side of its bounded
/// queue plus the count of jobs accepted but not yet finished.
struct WorkerHandle {
    tx: SyncSender<Job>,
    pending: Arc<AtomicUsize>,
    /// Eco jobs accepted but not yet finished. While nonzero, new
    /// `partition` requests must not coalesce onto an in-flight run:
    /// the queued eco will change the graph between the leader's
    /// execution and the newcomer's would-be execution.
    eco_pending: Arc<AtomicUsize>,
}

/// One accepted `partition` run that a later identical request on the
/// same connection may join instead of re-running the search. The
/// entry lives from enqueue until the leader's reply is rendered; its
/// followers each hold their own [`CancelToken`] (registered in the
/// server's inflight table, so `cancel` can detach one without
/// touching the leader).
struct CoalesceEntry {
    session: String,
    params: RunParams,
    leader: String,
    followers: Vec<(String, CancelToken)>,
}

/// Removes the coalesce entry led by `leader`, returning its followers
/// (empty when the job never had an entry — eco and progress runs).
fn take_followers(
    registry: &Mutex<Vec<CoalesceEntry>>,
    leader: &str,
) -> Vec<(String, CancelToken)> {
    let mut entries = registry.lock().unwrap();
    match entries.iter().position(|e| e.leader == leader) {
        Some(i) => entries.swap_remove(i).followers,
        None => Vec::new(),
    }
}

/// Marks a fanned-out reply body as served from a coalesced leader run.
fn coalesced_body(body: &str) -> String {
    let mut marked = body.strip_suffix('}').unwrap_or(body).to_owned();
    marked.push_str(", \"coalesced\": true}");
    marked
}

fn write_line<W: Write>(out: &Mutex<W>, line: &str) {
    let mut w = out.lock().unwrap();
    // A vanished client must not poison the server; the read side of
    // the connection will observe the close.
    let _ = writeln!(w, "{line}");
    let _ = w.flush();
}

/// Streams engine events to the wire as `progress` lines for one
/// request.
struct WireSink<'a, W: Write> {
    out: &'a Mutex<W>,
    id: &'a str,
}

impl<W: Write> EventSink for WireSink<'_, W> {
    fn record_event(&mut self, event: &TraceEvent) {
        write_line(self.out, &protocol::progress_line(self.id, &event_to_json(event)));
    }
}

fn run_failed(e: impl std::fmt::Display) -> ProtocolError {
    ProtocolError::new("run_failed", e.to_string())
}

impl Server {
    /// Creates an idle server with no sessions.
    #[must_use]
    pub fn new(config: ServerConfig) -> Server {
        Server {
            config,
            sessions: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        }
    }

    /// The configuration the server was built with.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Whether shutdown has been requested — by a `shutdown` command
    /// or by the external [`ServerConfig::stop`] flag.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
            || self.config.stop.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Requests shutdown: refuses new work and cancels every in-flight
    /// and queued request (each still produces its final reply, with a
    /// `cancelled`/`degraded` completion).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for token in self.inflight.lock().unwrap().values() {
            token.cancel();
        }
    }

    /// Number of loaded sessions.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Processes one request line synchronously on the calling thread,
    /// writing every reply line (interim and final) to `out`. This is
    /// the no-concurrency core of the protocol — [`Server::serve`]
    /// adds the per-session queues and workers on top — and the
    /// entry point tests and benchmarks drive directly.
    pub fn handle<W: Write + Send>(&self, line: &str, out: &mut W) {
        let shared = Mutex::new(out);
        let (id, command) = protocol::parse_request(line);
        let command = match command {
            Ok(command) => command,
            Err(e) => {
                write_line(&shared, &protocol::error_line(id.as_deref(), &e));
                return;
            }
        };
        let id = id.expect("every decoded command has an id");
        let reply = self.dispatch_sync(&id, command, &shared);
        write_line(&shared, &reply);
    }

    /// Runs one decoded command to completion, returning its final
    /// reply line. Partition/eco jobs execute inline.
    fn dispatch_sync<W: Write + Send>(
        &self,
        id: &str,
        command: Command,
        out: &Mutex<&mut W>,
    ) -> String {
        if self.is_stopped() && !matches!(command, Command::Query { .. } | Command::Shutdown) {
            let e = ProtocolError::new("shutting_down", "server is shutting down");
            return protocol::error_line(Some(id), &e);
        }
        match command {
            Command::Load { session, path, device, s_max, t_max, delta } => {
                match self.load(&session, &path, device.as_deref(), s_max, t_max, delta) {
                    Ok(body) => protocol::ok_line(id, &body),
                    Err(e) => protocol::error_line(Some(id), &e),
                }
            }
            Command::Query { session } => match self.query(session.as_deref()) {
                Ok(body) => protocol::ok_line(id, &body),
                Err(e) => protocol::error_line(Some(id), &e),
            },
            Command::Cancel { target } => protocol::ok_line(id, &self.cancel(&target)),
            Command::Shutdown => {
                self.shutdown();
                let sessions = self.session_count();
                protocol::ok_line(id, &format!("{{\"shutdown\": true, \"sessions\": {sessions}}}"))
            }
            Command::Partition { session, params } => {
                match self.submit_sync(id, &session, &JobKind::Partition, &params, out) {
                    Ok(line) => line,
                    Err(e) => protocol::error_line(Some(id), &e),
                }
            }
            Command::Eco { session, edits, params } => {
                match self.parse_edits(&edits).and_then(|script| {
                    self.submit_sync(id, &session, &JobKind::Eco(script), &params, out)
                }) {
                    Ok(line) => line,
                    Err(e) => protocol::error_line(Some(id), &e),
                }
            }
        }
    }

    /// Inline (queue-less) execution used by [`Server::handle`].
    fn submit_sync<W: Write + Send>(
        &self,
        id: &str,
        name: &str,
        kind: &JobKind,
        params: &RunParams,
        out: &Mutex<&mut W>,
    ) -> Result<String, ProtocolError> {
        let session = self.session(name)?;
        let cancel = self.register(id)?;
        let line = self.execute(id, name, &session, kind, params, Some(out), &cancel);
        self.inflight.lock().unwrap().remove(id);
        Ok(line)
    }

    /// Looks up a session by name.
    fn session(&self, name: &str) -> Result<Arc<Mutex<Session>>, ProtocolError> {
        self.sessions.lock().unwrap().get(name).cloned().ok_or_else(|| {
            ProtocolError::new("unknown_session", format!("no session named `{name}` is loaded"))
        })
    }

    /// Registers a request id's cancellation token; duplicate live ids
    /// are refused (they would make `cancel` ambiguous).
    fn register(&self, id: &str) -> Result<CancelToken, ProtocolError> {
        let token = CancelToken::new();
        let mut inflight = self.inflight.lock().unwrap();
        if inflight.contains_key(id) {
            return Err(ProtocolError::new(
                "duplicate_id",
                format!("request id `{id}` is already in flight"),
            ));
        }
        inflight.insert(id.to_owned(), token.clone());
        Ok(token)
    }

    fn parse_edits(&self, edits: &EditSource) -> Result<EditScript, ProtocolError> {
        let text = match edits {
            EditSource::Inline(text) => text.clone(),
            EditSource::Path(path) => std::fs::read_to_string(path).map_err(|e| {
                ProtocolError::new("bad_request", format!("cannot read edits {path}: {e}"))
            })?,
        };
        EditScript::parse_limited(&text, &self.config.limits)
            .map_err(|e| ProtocolError::new("bad_request", format!("bad edit script: {e}")))
    }

    /// Parses a netlist and binds it to `name` (replacing any previous
    /// binding), returning the `load` result body.
    fn load(
        &self,
        name: &str,
        path: &str,
        device: Option<&str>,
        s_max: Option<u64>,
        t_max: Option<usize>,
        delta: f64,
    ) -> Result<String, ProtocolError> {
        let constraints = resolve_constraints(device, s_max, t_max, delta)?;
        let graph = read_netlist(Path::new(path), &self.config.limits)
            .map_err(|e| ProtocolError::new("load_failed", e))?;
        let (nodes, nets, pins) = (graph.node_count(), graph.net_count(), graph.pin_count());
        let fingerprint = fingerprint_graph(&graph);
        let session = Session {
            graph: Arc::new(graph),
            constraints,
            path: path.to_owned(),
            fingerprint,
            last: None,
            blocks: 0,
            totals: Metrics::enabled(),
            requests: 0,
        };
        let replaced = self
            .sessions
            .lock()
            .unwrap()
            .insert(name.to_owned(), Arc::new(Mutex::new(session)))
            .is_some();
        Ok(format!(
            "{{\"session\": {}, \"nodes\": {nodes}, \"nets\": {nets}, \"pins\": {pins}, \
             \"s_max\": {}, \"t_max\": {}, \"replaced\": {replaced}}}",
            protocol::json_string(name),
            constraints.s_max,
            constraints.t_max,
        ))
    }

    /// Renders the `query` result body: one session's state, or the
    /// sorted list of all sessions.
    fn query(&self, name: Option<&str>) -> Result<String, ProtocolError> {
        if let Some(name) = name {
            let session = self.session(name)?;
            let s = session.lock().unwrap();
            return Ok(format!(
                "{{\"session\": {}, \"path\": {}, \"nodes\": {}, \"nets\": {}, \
                 \"s_max\": {}, \"t_max\": {}, \"requests\": {}, \"blocks\": {}, \
                 \"has_assignment\": {}, \"fingerprint\": \"{}\", \
                 \"counters\": {{\"server_requests\": {}, \
                 \"server_cancelled\": {}, \"server_coalesced\": {}, \"runs\": {}, \
                 \"passes\": {}, \"moves_applied\": {}}}}}",
                protocol::json_string(name),
                protocol::json_string(&s.path),
                s.graph.node_count(),
                s.graph.net_count(),
                s.constraints.s_max,
                s.constraints.t_max,
                s.requests,
                s.blocks,
                s.last.is_some(),
                s.fingerprint,
                s.totals.get(Counter::ServerRequests),
                s.totals.get(Counter::ServerCancelled),
                s.totals.get(Counter::ServerCoalesced),
                s.totals.get(Counter::Runs),
                s.totals.get(Counter::Passes),
                s.totals.get(Counter::MovesApplied),
            ));
        }
        let sessions = self.sessions.lock().unwrap();
        let mut names: Vec<&String> = sessions.keys().collect();
        names.sort();
        let mut body = String::from("{\"sessions\": [");
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                body.push_str(", ");
            }
            let s = sessions[n.as_str()].lock().unwrap();
            let _ = write!(
                body,
                "{{\"session\": {}, \"nodes\": {}, \"requests\": {}}}",
                protocol::json_string(n),
                s.graph.node_count(),
                s.requests,
            );
        }
        body.push_str("]}");
        Ok(body)
    }

    /// Cancels the request with id `target`; the `cancel` result body
    /// reports whether a live request was found. The cancelled request
    /// still produces its own final reply.
    fn cancel(&self, target: &str) -> String {
        let found = match self.inflight.lock().unwrap().get(target) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        };
        format!("{{\"target\": {}, \"cancelled\": {found}}}", protocol::json_string(target))
    }

    /// Runs one partition/eco job and returns its final reply line.
    #[allow(clippy::too_many_arguments)]
    fn execute<W: Write + Send>(
        &self,
        id: &str,
        name: &str,
        session: &Arc<Mutex<Session>>,
        kind: &JobKind,
        params: &RunParams,
        out: Option<&Mutex<W>>,
        cancel: &CancelToken,
    ) -> String {
        let result = match kind {
            JobKind::Partition => self.run_partition(id, name, session, params, out, cancel),
            JobKind::Eco(script) => self.run_eco(name, session, script, params, cancel),
        };
        match result {
            Ok(body) => protocol::ok_line(id, &body),
            Err(e) => protocol::error_line(Some(id), &e),
        }
    }

    fn budgeted_config(&self, params: &RunParams, cancel: &CancelToken) -> (FpartConfig, usize) {
        let mut cfg = FpartConfig::default();
        if let Some(seed) = params.seed {
            cfg.seed = seed;
        }
        cfg.budget = RunBudget {
            deadline: params.deadline_ms.map(Duration::from_millis),
            max_passes: params.max_passes,
            max_moves: params.max_moves,
            cancel: Some(cancel.clone()),
        };
        let total = self.config.threads.max(1);
        let threads = params.threads.unwrap_or(total).clamp(1, total);
        (cfg, threads)
    }

    fn run_partition<W: Write + Send>(
        &self,
        id: &str,
        name: &str,
        session: &Arc<Mutex<Session>>,
        params: &RunParams,
        out: Option<&Mutex<W>>,
        cancel: &CancelToken,
    ) -> Result<String, ProtocolError> {
        let (graph, constraints) = {
            let s = session.lock().unwrap();
            (Arc::clone(&s.graph), s.constraints)
        };
        let (cfg, threads) = self.budgeted_config(params, cancel);
        let restarts = params.restarts;
        let started = Instant::now();
        // With one restart a streamed run is bit-identical to the
        // restarts path: the per-restart seed offset is zero at index
        // 0 and the intra-run thread budget is the same split.
        let report = match (params.progress && restarts == 1, out) {
            (true, Some(out)) => {
                let mut sink = WireSink { out, id };
                let mut obs = Observer::new(Metrics::enabled(), Some(&mut sink));
                obs.heartbeat = Heartbeat::every(Duration::from_millis(self.config.heartbeat_ms));
                let outcome = match params.method {
                    Method::Multilevel => {
                        let (_, inner) = split_thread_budget(threads, 1);
                        let ml = MultilevelConfig {
                            threads: inner,
                            memo: self.config.memo.clone(),
                            ..MultilevelConfig::default()
                        };
                        partition_multilevel_observed(&graph, constraints, &cfg, &ml, &mut obs)
                    }
                    Method::Fpart => partition_observed(&graph, constraints, &cfg, &mut obs),
                }
                .map_err(run_failed)?;
                let totals = obs.metrics;
                let completion = outcome.completion;
                RestartsReport {
                    outcome,
                    totals: totals.clone(),
                    per_restart: vec![totals],
                    completion,
                    failed: Vec::new(),
                }
            }
            _ => match params.method {
                Method::Multilevel => partition_multilevel_restarts_observed(
                    &graph,
                    constraints,
                    &cfg,
                    &MultilevelConfig {
                        memo: self.config.memo.clone(),
                        ..MultilevelConfig::default()
                    },
                    restarts,
                    threads,
                )
                .map_err(run_failed)?,
                Method::Fpart => {
                    partition_restarts_observed(&graph, constraints, &cfg, restarts, threads)
                        .map_err(run_failed)?
                }
            },
        };
        let elapsed_ms = started.elapsed().as_millis();
        if let Some(path) = &params.output {
            write_assignment_atomic(path, &graph, &report.outcome)?;
        }
        let mut s = session.lock().unwrap();
        s.requests += 1;
        s.totals.merge(&report.totals);
        s.totals.bump(Counter::ServerRequests);
        if report.completion == Completion::Cancelled {
            s.totals.bump(Counter::ServerCancelled);
        }
        s.last = Some(report.outcome.assignment.clone());
        s.blocks = report.outcome.blocks.len();
        Ok(render_run_result(name, &report, restarts, threads, elapsed_ms, params, ""))
    }

    fn run_eco(
        &self,
        name: &str,
        session: &Arc<Mutex<Session>>,
        script: &EditScript,
        params: &RunParams,
        cancel: &CancelToken,
    ) -> Result<String, ProtocolError> {
        let (graph, constraints, previous, fp_before) = {
            let s = session.lock().unwrap();
            let previous = s.last.clone().ok_or_else(|| {
                ProtocolError::new(
                    "no_assignment",
                    format!("session `{name}` has no partition to repair; run `partition` first"),
                )
            })?;
            (Arc::clone(&s.graph), s.constraints, previous, s.fingerprint)
        };
        let (cfg, threads) = self.budgeted_config(params, cancel);
        let started = Instant::now();
        let edited = apply_script(&graph, script)
            .map_err(|e| ProtocolError::new("bad_request", format!("edit script failed: {e}")))?;
        // O(edit) fingerprint maintenance: the session hash advances by
        // the edit's XOR delta instead of an O(pins) rehash.
        let fp_after = fp_before ^ edited.fingerprint_delta;
        debug_assert_eq!(fp_after, fingerprint_graph(&edited.graph));
        let eco = EcoConfig {
            multilevel: MultilevelConfig {
                memo: self.config.memo.clone(),
                ..MultilevelConfig::default()
            },
            ..EcoConfig::default()
        };
        let report = repartition_eco_restarts_observed(
            &edited.graph,
            constraints,
            &cfg,
            &eco,
            &previous,
            &edited.node_map,
            params.restarts,
            threads,
        )
        .map_err(run_failed)?;
        let elapsed_ms = started.elapsed().as_millis();
        let edited_graph = Arc::new(edited.graph);
        if let Some(path) = &params.output {
            write_assignment_atomic(path, &edited_graph, &report.outcome)?;
        }
        let extra = format!(
            ", \"edits\": {}, \"added_nodes\": {}, \"removed_nodes\": {}, \"nodes\": {}",
            script.len(),
            edited.added_nodes,
            edited.removed_nodes,
            edited_graph.node_count(),
        );
        let mut s = session.lock().unwrap();
        s.requests += 1;
        s.totals.merge(&report.totals);
        s.totals.bump(Counter::ServerRequests);
        if report.completion == Completion::Cancelled {
            s.totals.bump(Counter::ServerCancelled);
        }
        s.graph = edited_graph;
        s.fingerprint = fp_after;
        s.last = Some(report.outcome.assignment.clone());
        s.blocks = report.outcome.blocks.len();
        Ok(render_run_result(name, &report, params.restarts, threads, elapsed_ms, params, &extra))
    }

    /// Serves one connection over arbitrary reader/writer halves
    /// (stdio in the CLI). Blocks until the stream ends or a
    /// `shutdown` request (or the external stop flag) fires. Partition
    /// and eco requests run on lazily-spawned per-session worker
    /// threads behind bounded queues; everything else is answered
    /// inline, so `query` and `cancel` stay responsive while runs are
    /// in flight.
    ///
    /// # Errors
    ///
    /// Propagates fatal I/O errors from the reader (timeouts are
    /// retried internally; see [`protocol::read_line_limited`]).
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        mut reader: R,
        writer: W,
    ) -> std::io::Result<()> {
        let out = Mutex::new(writer);
        write_line(&out, &protocol::hello_line());
        let stop = || self.is_stopped();
        // Per-connection: coalescing fans replies out over this
        // connection's writer, so requests from different connections
        // never join each other's runs.
        let registry: Mutex<Vec<CoalesceEntry>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| -> std::io::Result<()> {
            let mut workers: HashMap<String, WorkerHandle> = HashMap::new();
            loop {
                if self.is_stopped() {
                    break;
                }
                let line = match protocol::read_line_limited(
                    &mut reader,
                    self.config.limits.max_line_len,
                    &stop,
                )? {
                    None => break,
                    Some(Err(e)) => {
                        write_line(&out, &protocol::error_line(None, &e));
                        continue;
                    }
                    Some(Ok(line)) => line,
                };
                if line.trim().is_empty() {
                    continue;
                }
                let (id, command) = protocol::parse_request(&line);
                let command = match command {
                    Ok(command) => command,
                    Err(e) => {
                        write_line(&out, &protocol::error_line(id.as_deref(), &e));
                        continue;
                    }
                };
                let id = id.expect("every decoded command has an id");
                match command {
                    Command::Partition { session, params } => {
                        self.enqueue(
                            scope,
                            &mut workers,
                            &registry,
                            &out,
                            &id,
                            &session,
                            JobKind::Partition,
                            params,
                        );
                    }
                    Command::Eco { session, edits, params } => match self.parse_edits(&edits) {
                        Ok(script) => {
                            self.enqueue(
                                scope,
                                &mut workers,
                                &registry,
                                &out,
                                &id,
                                &session,
                                JobKind::Eco(script),
                                params,
                            );
                        }
                        Err(e) => write_line(&out, &protocol::error_line(Some(&id), &e)),
                    },
                    Command::Shutdown => {
                        self.shutdown();
                        let sessions = self.session_count();
                        write_line(
                            &out,
                            &protocol::ok_line(
                                &id,
                                &format!("{{\"shutdown\": true, \"sessions\": {sessions}}}"),
                            ),
                        );
                        break;
                    }
                    other => {
                        // Load/query/cancel are fast; answer inline.
                        let reply = match other {
                            Command::Load { session, path, device, s_max, t_max, delta } => self
                                .load(&session, &path, device.as_deref(), s_max, t_max, delta)
                                .map_or_else(
                                    |e| protocol::error_line(Some(&id), &e),
                                    |body| protocol::ok_line(&id, &body),
                                ),
                            Command::Query { session } => {
                                self.query(session.as_deref()).map_or_else(
                                    |e| protocol::error_line(Some(&id), &e),
                                    |body| protocol::ok_line(&id, &body),
                                )
                            }
                            Command::Cancel { target } => {
                                protocol::ok_line(&id, &self.cancel(&target))
                            }
                            _ => unreachable!("run commands handled above"),
                        };
                        write_line(&out, &reply);
                    }
                }
            }
            // Dropping the submit handles lets workers drain their
            // queues (cancelled jobs finish fast) and exit; the scope
            // joins them before the writer is released.
            workers.clear();
            Ok(())
        })
    }

    /// Parks a run request in its session's queue, spawning the
    /// session's worker on first use. A non-streaming `partition`
    /// whose params exactly match an accepted-but-unfinished one (and
    /// with no eco pending in between) does not enqueue at all: it
    /// joins that leader's [`CoalesceEntry`] and shares its run.
    #[allow(clippy::too_many_arguments)]
    fn enqueue<'scope, 'env, W: Write + Send + 'scope>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        workers: &mut HashMap<String, WorkerHandle>,
        registry: &'scope Mutex<Vec<CoalesceEntry>>,
        out: &'scope Mutex<W>,
        id: &str,
        name: &str,
        kind: JobKind,
        params: RunParams,
    ) {
        if self.is_stopped() {
            let e = ProtocolError::new("shutting_down", "server is shutting down");
            write_line(out, &protocol::error_line(Some(id), &e));
            return;
        }
        let session = match self.session(name) {
            Ok(session) => session,
            Err(e) => {
                write_line(out, &protocol::error_line(Some(id), &e));
                return;
            }
        };
        // Streaming runs never coalesce: each wants its own progress
        // event stream.
        let coalescable = matches!(kind, JobKind::Partition) && !params.progress;
        if coalescable
            && workers.get(name).is_some_and(|w| w.eco_pending.load(Ordering::SeqCst) == 0)
        {
            let mut entries = registry.lock().unwrap();
            if let Some(entry) =
                entries.iter_mut().find(|e| e.session == name && e.params == params)
            {
                match self.register(id) {
                    Ok(token) => {
                        entry.followers.push((id.to_owned(), token));
                    }
                    Err(e) => {
                        drop(entries);
                        write_line(out, &protocol::error_line(Some(id), &e));
                    }
                }
                return;
            }
        }
        let cancel = match self.register(id) {
            Ok(token) => token,
            Err(e) => {
                write_line(out, &protocol::error_line(Some(id), &e));
                return;
            }
        };
        let worker = workers.entry(name.to_owned()).or_insert_with(|| {
            let (tx, rx) = sync_channel::<Job>(self.config.queue_capacity);
            let pending = Arc::new(AtomicUsize::new(0));
            let eco_pending = Arc::new(AtomicUsize::new(0));
            let worker_pending = Arc::clone(&pending);
            let worker_eco = Arc::clone(&eco_pending);
            scope.spawn(move || {
                while let Ok(job) = rx.recv() {
                    let result = match &job.kind {
                        JobKind::Partition => self.run_partition(
                            &job.id,
                            &job.name,
                            &job.session,
                            &job.params,
                            Some(out),
                            &job.cancel,
                        ),
                        JobKind::Eco(script) => {
                            self.run_eco(&job.name, &job.session, script, &job.params, &job.cancel)
                        }
                    };
                    if matches!(job.kind, JobKind::Eco(_)) {
                        worker_eco.fetch_sub(1, Ordering::SeqCst);
                    }
                    let followers = take_followers(registry, &job.id);
                    if !followers.is_empty() {
                        let mut s = job.session.lock().unwrap();
                        s.totals.add(Counter::ServerCoalesced, followers.len() as u64);
                    }
                    let line = match &result {
                        Ok(body) => protocol::ok_line(&job.id, body),
                        Err(e) => protocol::error_line(Some(&job.id), e),
                    };
                    // Counted down on completion (not on start) so
                    // `pending` is running-plus-queued: a submit
                    // parked behind a running job sees position 1.
                    // Deregister and count down BEFORE the reply goes
                    // out: a client that reacts to the final reply
                    // immediately must not observe stale backpressure.
                    self.inflight.lock().unwrap().remove(&job.id);
                    worker_pending.fetch_sub(1, Ordering::SeqCst);
                    write_line(out, &line);
                    // Fan the leader's result out to every coalesced
                    // follower — unless a `cancel` detached it while
                    // the run was in flight.
                    for (fid, token) in followers {
                        self.inflight.lock().unwrap().remove(&fid);
                        let fline = if token.is_cancelled() {
                            let e = ProtocolError::new(
                                "cancelled",
                                "request was cancelled while coalesced onto an \
                                 identical in-flight run",
                            );
                            protocol::error_line(Some(&fid), &e)
                        } else {
                            match &result {
                                Ok(body) => protocol::ok_line(&fid, &coalesced_body(body)),
                                Err(e) => protocol::error_line(Some(&fid), e),
                            }
                        };
                        write_line(out, &fline);
                    }
                }
            });
            WorkerHandle { tx, pending, eco_pending }
        });
        // The entry goes in BEFORE the job is visible to the worker,
        // so the worker's post-run sweep always finds it.
        if coalescable {
            registry.lock().unwrap().push(CoalesceEntry {
                session: name.to_owned(),
                params: params.clone(),
                leader: id.to_owned(),
                followers: Vec::new(),
            });
        }
        if matches!(kind, JobKind::Eco(_)) {
            worker.eco_pending.fetch_add(1, Ordering::SeqCst);
        }
        let job = Job { id: id.to_owned(), name: name.to_owned(), session, kind, params, cancel };
        let ahead = worker.pending.fetch_add(1, Ordering::SeqCst);
        match worker.tx.try_send(job) {
            Ok(()) => {
                if ahead > 0 {
                    write_line(out, &protocol::queued_line(id, ahead));
                }
            }
            Err(TrySendError::Full(job) | TrySendError::Disconnected(job)) => {
                worker.pending.fetch_sub(1, Ordering::SeqCst);
                if matches!(job.kind, JobKind::Eco(_)) {
                    worker.eco_pending.fetch_sub(1, Ordering::SeqCst);
                }
                let _ = take_followers(registry, &job.id);
                self.inflight.lock().unwrap().remove(&job.id);
                let e = ProtocolError::new(
                    "busy",
                    format!(
                        "session `{}` queue is full ({} requests waiting)",
                        job.name, self.config.queue_capacity
                    ),
                );
                write_line(out, &protocol::error_line(Some(&job.id), &e));
            }
        }
    }

    /// Binds `path` as a Unix domain socket and serves connections
    /// until shutdown. Each connection gets its own [`Server::serve`]
    /// loop on a scoped thread; sessions are shared across
    /// connections, so one client can `load` and another `partition`.
    /// A stale socket file at `path` is replaced; the file is removed
    /// on clean exit.
    ///
    /// # Errors
    ///
    /// Fails when the socket cannot be bound or accepted from.
    #[cfg(unix)]
    pub fn serve_unix(&self, path: &Path) -> std::io::Result<()> {
        use std::os::unix::net::UnixListener;
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let result = std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                if self.is_stopped() {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Blocking reads with a short timeout so idle
                        // connections observe shutdown promptly.
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
                        let reader = BufReader::new(stream.try_clone()?);
                        scope.spawn(move || {
                            let _ = self.serve(reader, stream);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        let _ = std::fs::remove_file(path);
        result
    }
}

/// Resolves `load` device fields exactly like the CLI: a catalog name
/// with a filling ratio, or explicit caps.
fn resolve_constraints(
    device: Option<&str>,
    s_max: Option<u64>,
    t_max: Option<usize>,
    delta: f64,
) -> Result<DeviceConstraints, ProtocolError> {
    match (device, s_max, t_max) {
        (Some(name), None, None) => Device::by_name(name)
            .map(|d| d.constraints(delta))
            .ok_or_else(|| ProtocolError::new("bad_request", format!("unknown device `{name}`"))),
        (None, Some(s), Some(t)) => Ok(DeviceConstraints::new(s, t)),
        (Some(_), _, _) => {
            Err(ProtocolError::new("bad_request", "give `device` or `s_max`/`t_max`, not both"))
        }
        _ => Err(ProtocolError::new(
            "bad_request",
            "missing device: give `device` or both `s_max` and `t_max`",
        )),
    }
}

/// Reads a netlist by extension (`.hgr` hMETIS, `.blif` BLIF, default
/// `.fhg`) under the server's parse limits.
fn read_netlist(path: &Path, limits: &ParseLimits) -> Result<Hypergraph, String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let ext = |name: &str| path.extension().is_some_and(|e| e.eq_ignore_ascii_case(name));
    if ext("hgr") {
        fpart_hypergraph::hmetis::read_hmetis_limited(file, limits)
            .map_err(|e| format!("{}: {e}", path.display()))
    } else if ext("blif") {
        fpart_hypergraph::blif::read_blif_limited(file, limits)
            .map_err(|e| format!("{}: {e}", path.display()))
    } else {
        fpart_hypergraph::io::read_netlist_limited(file, limits)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Writes the winning assignment in the versioned format via the
/// crash-safe temp-fsync-rename path.
fn write_assignment_atomic(
    path: &str,
    graph: &Hypergraph,
    outcome: &crate::driver::PartitionOutcome,
) -> Result<(), ProtocolError> {
    let mut bytes = Vec::new();
    crate::assignment::write_assignment_versioned(
        &mut bytes,
        graph,
        &outcome.assignment,
        outcome.blocks.len(),
    )
    .map_err(|e| ProtocolError::new("run_failed", format!("cannot render assignment: {e}")))?;
    write_atomic(Path::new(path), &bytes)
        .map_err(|e| ProtocolError::new("run_failed", format!("cannot write {path}: {e}")))
}

/// Renders the shared result body of `partition` and `eco` replies.
#[allow(clippy::too_many_arguments)]
fn render_run_result(
    name: &str,
    report: &RestartsReport,
    restarts: usize,
    threads: usize,
    elapsed_ms: u128,
    params: &RunParams,
    extra: &str,
) -> String {
    let o = &report.outcome;
    let mut body = format!(
        "{{\"session\": {}, \"devices\": {}, \"lower_bound\": {}, \"feasible\": {}, \
         \"cut\": {}, \"total_moves\": {}, \"completion\": \"{}\", \"restarts\": {restarts}, \
         \"threads\": {threads}, \"failed_restarts\": {}, \"elapsed_ms\": {elapsed_ms}, \
         \"counters\": {{\"runs\": {}, \"passes\": {}, \"moves_applied\": {}}}{extra}",
        protocol::json_string(name),
        o.device_count,
        o.lower_bound,
        o.feasible,
        o.cut,
        o.total_moves,
        report.completion.as_str(),
        report.failed.len(),
        report.totals.get(Counter::Runs),
        report.totals.get(Counter::Passes),
        report.totals.get(Counter::MovesApplied),
    );
    if params.return_assignment {
        body.push_str(", \"assignment\": [");
        for (i, b) in o.assignment.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&b.to_string());
        }
        body.push(']');
    }
    if let Some(path) = &params.output {
        let _ = write!(body, ", \"output\": {}", protocol::json_string(path));
    }
    body.push('}');
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    fn temp_netlist(name: &str, nodes: usize, terminals: usize) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fpart_server_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.fhg"));
        let graph = window_circuit(&WindowConfig::new(name, nodes, terminals), 7);
        let file = std::fs::File::create(&path).unwrap();
        fpart_hypergraph::io::write_netlist(file, &graph).unwrap();
        path
    }

    fn parse_reply(out: &[u8]) -> Vec<Json> {
        String::from_utf8(out.to_vec()).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect()
    }

    #[test]
    fn load_partition_query_round_trip() {
        let path = temp_netlist("roundtrip", 120, 8);
        let server = Server::new(ServerConfig::default());
        let mut out = Vec::new();
        server.handle(
            &format!(
                "{{\"id\": \"1\", \"cmd\": \"load\", \"session\": \"s\", \"path\": {}, \
                 \"s_max\": 40, \"t_max\": 24}}",
                protocol::json_string(path.to_str().unwrap())
            ),
            &mut out,
        );
        server.handle(
            "{\"id\": \"2\", \"cmd\": \"partition\", \"session\": \"s\", \"seed\": 5}",
            &mut out,
        );
        server.handle("{\"id\": \"3\", \"cmd\": \"query\", \"session\": \"s\"}", &mut out);
        let replies = parse_reply(&out);
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0].get("ok"), Some(&Json::Bool(true)));
        let result = replies[1].get("result").unwrap();
        assert_eq!(result.get("completion").unwrap().as_str(), Some("complete"));
        assert!(result.get("devices").unwrap().as_u64().unwrap() >= 1);
        let q = replies[2].get("result").unwrap();
        assert_eq!(q.get("requests").unwrap().as_u64(), Some(1));
        assert_eq!(q.get("has_assignment"), Some(&Json::Bool(true)));
        assert_eq!(q.get("counters").unwrap().get("server_requests").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn unknown_session_and_duplicate_load_are_typed() {
        let server = Server::new(ServerConfig::default());
        let mut out = Vec::new();
        server.handle("{\"id\": \"9\", \"cmd\": \"partition\", \"session\": \"ghost\"}", &mut out);
        let replies = parse_reply(&out);
        assert_eq!(replies[0].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            replies[0].get("error").unwrap().get("code").unwrap().as_str(),
            Some("unknown_session")
        );
    }

    #[test]
    fn shutdown_refuses_new_runs() {
        let server = Server::new(ServerConfig::default());
        let mut out = Vec::new();
        server.handle("{\"id\": \"1\", \"cmd\": \"shutdown\"}", &mut out);
        server.handle("{\"id\": \"2\", \"cmd\": \"partition\", \"session\": \"s\"}", &mut out);
        let replies = parse_reply(&out);
        assert_eq!(replies[0].get("result").unwrap().get("shutdown"), Some(&Json::Bool(true)));
        assert_eq!(
            replies[1].get("error").unwrap().get("code").unwrap().as_str(),
            Some("shutting_down")
        );
    }
}
