//! Pairwise refinement of an existing k-way partition.
//!
//! Shared by the multilevel flow and the direct k-way mode: repeatedly
//! run two-block improvement passes on the most cut-connected block
//! pairs. Unlike the driver's schedule there is no remainder — every
//! block obeys the same move window.

use fpart_hypergraph::NetId;

use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::engine::{improve, ImproveContext, NO_REMAINDER};
use crate::state::PartitionState;

/// Options of the pairwise refiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Maximum refinement rounds.
    pub rounds: usize,
    /// Block pairs refined per round (each block at most once a round).
    pub pairs_per_round: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { rounds: 4, pairs_per_round: 8 }
    }
}

/// Refines `state` with two-block improvement passes over the most
/// cut-connected block pairs until a round stops improving. Returns the
/// number of pair passes that improved the solution key.
pub fn refine_pairs(
    state: &mut PartitionState<'_>,
    evaluator: &CostEvaluator,
    config: &FpartConfig,
    refine: &RefineConfig,
) -> usize {
    let k = state.block_count();
    let mut improved_total = 0usize;
    if k < 2 {
        return 0;
    }
    // The strict two-block ε²_min exists to protect the remainder during
    // the recursive flow; refinement has no remainder, so both blocks of
    // a pair get the loose multi-block coefficient.
    let config = FpartConfig { eps_min_two: config.eps_min_multi, ..config.clone() };
    let config = &config;
    for _ in 0..refine.rounds {
        let pairs = top_crossing_pairs(state, refine.pairs_per_round);
        if pairs.is_empty() {
            break;
        }
        let mut improved = false;
        for (a, b) in pairs {
            let ctx = ImproveContext {
                evaluator,
                config,
                remainder: NO_REMAINDER,
                minimum_reached: true, // strict S_MAX cap during refinement
                budget: None,
            };
            let stats = improve(state, &[a, b], &ctx);
            if stats.final_key.better_than(&stats.initial_key) {
                improved = true;
                improved_total += 1;
            }
        }
        if !improved {
            break;
        }
    }
    improved_total
}

/// The block pairs with the most crossing nets, each block used at most
/// once (so one round touches many regions).
#[must_use]
pub fn top_crossing_pairs(state: &PartitionState<'_>, limit: usize) -> Vec<(usize, usize)> {
    let k = state.block_count();
    let graph = state.graph();
    let mut crossings = std::collections::HashMap::<(usize, usize), usize>::new();
    for net in graph.net_ids() {
        let net: NetId = net;
        if state.net_span(net) < 2 {
            continue;
        }
        let blocks: Vec<usize> = (0..k).filter(|&b| state.net_pins_in(net, b) > 0).collect();
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                *crossings.entry((blocks[i], blocks[j])).or_default() += 1;
            }
        }
    }
    let mut pairs: Vec<((usize, usize), usize)> = crossings.into_iter().collect();
    pairs.sort_by_key(|&((a, b), c)| (std::cmp::Reverse(c), a, b));
    let mut used = vec![false; k];
    let mut out = Vec::new();
    for ((a, b), _) in pairs {
        if out.len() >= limit {
            break;
        }
        if !used[a] && !used[b] {
            used[a] = true;
            used[b] = true;
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::DeviceConstraints;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};

    #[test]
    fn top_pairs_orders_by_crossings() {
        let (g, planted) = clustered_circuit(&ClusteredConfig::new("cl", 3, 10), 3);
        let state = PartitionState::from_assignment(&g, planted, 3);
        let pairs = top_crossing_pairs(&state, 3);
        assert!(!pairs.is_empty());
        // Each block appears at most once.
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &pairs {
            assert!(seen.insert(*a));
            assert!(seen.insert(*b));
        }
    }

    #[test]
    fn refine_improves_a_scrambled_partition() {
        let cfg = ClusteredConfig::new("cl", 3, 20);
        let (g, planted) = clustered_circuit(&cfg, 7);
        // Scramble: swap every 4th node's cluster.
        let mut assignment = planted.clone();
        for i in (0..assignment.len()).step_by(4) {
            assignment[i] = (assignment[i] + 1) % 3;
        }
        let mut state = PartitionState::from_assignment(&g, assignment, 3);
        let before = state.cut_count();
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(25, 100), &config, 3, g.terminal_count());
        let improved = refine_pairs(&mut state, &evaluator, &config, &RefineConfig::default());
        state.assert_consistent();
        assert!(improved > 0);
        assert!(state.cut_count() < before);
    }

    #[test]
    fn single_block_is_a_noop() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 8), 1);
        let mut state = PartitionState::single_block(&g);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(100, 100), &config, 1, 0);
        assert_eq!(refine_pairs(&mut state, &evaluator, &config, &RefineConfig::default()), 0);
    }
}
