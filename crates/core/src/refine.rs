//! Pairwise refinement of an existing k-way partition.
//!
//! Shared by the multilevel flow and the direct k-way mode: repeatedly
//! run two-block improvement passes on the most cut-connected block
//! pairs. Unlike the driver's schedule there is no remainder — every
//! block obeys the same move window.
//!
//! Boundary refinement rounds run their pair passes as independent
//! *jobs*: [`top_crossing_pairs`] returns block-disjoint pairs, every
//! job refines a private clone of the round-start snapshot, and the
//! surviving moves are committed to the master state in pair-index
//! order. Because each job's input is the snapshot (never a sibling's
//! output) and the commit order is fixed, the result is bit-identical
//! whether the jobs run on one worker or many
//! ([`RefineConfig::workers`]).

use fpart_hypergraph::{NetId, NodeId};

use crate::budget::BudgetTracker;
use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::engine::{improve, improve_cells_metered, ImproveContext, NO_REMAINDER};
use crate::obs::{Counter, Metrics};
use crate::parallel::run_indexed_caught_metered;
use crate::state::PartitionState;
use crate::trace::ImproveKind;

/// Options of the pairwise refiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineConfig {
    /// Maximum refinement rounds.
    pub rounds: usize,
    /// Block pairs refined per round (each block at most once a round).
    pub pairs_per_round: usize,
    /// Worker threads for the boundary pair jobs of one round. The
    /// result is bit-identical for every value (jobs read the
    /// round-start snapshot and commit in pair order); values are
    /// clamped to at least 1.
    pub workers: usize,
}

impl Default for RefineConfig {
    fn default() -> Self {
        RefineConfig { rounds: 4, pairs_per_round: 8, workers: crate::parallel::default_threads() }
    }
}

/// Refines `state` with two-block improvement passes over the most
/// cut-connected block pairs until a round stops improving. Returns the
/// number of pair passes that improved the solution key.
pub fn refine_pairs(
    state: &mut PartitionState<'_>,
    evaluator: &CostEvaluator,
    config: &FpartConfig,
    refine: &RefineConfig,
) -> usize {
    let k = state.block_count();
    let mut improved_total = 0usize;
    if k < 2 {
        return 0;
    }
    // The strict two-block ε²_min exists to protect the remainder during
    // the recursive flow; refinement has no remainder, so both blocks of
    // a pair get the loose multi-block coefficient.
    let config = FpartConfig { eps_min_two: config.eps_min_multi, ..config.clone() };
    let config = &config;
    for _ in 0..refine.rounds {
        let pairs = top_crossing_pairs(state, refine.pairs_per_round);
        if pairs.is_empty() {
            break;
        }
        let mut improved = false;
        for (a, b) in pairs {
            let ctx = ImproveContext {
                evaluator,
                config,
                remainder: NO_REMAINDER,
                minimum_reached: true, // strict S_MAX cap during refinement
                budget: None,
            };
            let stats = improve(state, &[a, b], &ctx);
            if stats.final_key.better_than(&stats.initial_key) {
                improved = true;
                improved_total += 1;
            }
        }
        if !improved {
            break;
        }
    }
    improved_total
}

/// Boundary-only refinement of one uncoarsening level of the n-level
/// multilevel flow.
///
/// Like [`refine_pairs`], but each pair pass runs the full FM machinery
/// (gain buckets, infeasibility-distance key, feasible-move regions)
/// over **boundary cells only** — the cells of the pair incident to a
/// net crossing the pair — so the per-level cost scales with the cut,
/// not the level's node count. The boundary buffer is reused across
/// pairs and rounds; the move loop inside each pass stays
/// zero-allocation (engine scratch).
///
/// `budget` is checked at every round boundary and threaded into each
/// improve call (pass boundaries), so a deadline expiring mid-level
/// stops refinement promptly while the state stays a valid partition.
/// Each pair pass is timed under [`ImproveKind::Boundary`] and counted
/// as [`Counter::BoundaryRefinements`] in `metrics`.
///
/// Returns the aggregated [`BoundaryRefineStats`] of the level.
pub fn refine_boundary_metered(
    state: &mut PartitionState<'_>,
    evaluator: &CostEvaluator,
    config: &FpartConfig,
    refine: &RefineConfig,
    budget: Option<&BudgetTracker>,
    metrics: &mut Metrics,
) -> BoundaryRefineStats {
    refine_boundary_inner(state, evaluator, config, refine, budget, metrics, None)
}

/// [`refine_boundary_metered`] restricted to *dirty* blocks: only block
/// pairs where at least one side is marked dirty in `dirty` are
/// refined. This is the repair step of the ECO flow — blocks untouched
/// by a netlist edit keep their cells in place, so the cost of a repair
/// scales with the edit, not the design.
///
/// `dirty` must have one entry per block. A pair's pass may move cells
/// of its clean side (the boundary spans both blocks); that is
/// intentional — a repair that could not rebalance against a clean
/// neighbour would be unable to restore feasibility.
pub fn refine_boundary_dirty_metered(
    state: &mut PartitionState<'_>,
    evaluator: &CostEvaluator,
    config: &FpartConfig,
    refine: &RefineConfig,
    budget: Option<&BudgetTracker>,
    metrics: &mut Metrics,
    dirty: &[bool],
) -> BoundaryRefineStats {
    assert_eq!(dirty.len(), state.block_count(), "one dirty flag per block");
    refine_boundary_inner(state, evaluator, config, refine, budget, metrics, Some(dirty))
}

/// One pair job's contribution to a boundary round: the moves to commit
/// (boundary cells whose block changed in the job's private snapshot),
/// plus its stats delta.
struct PairOutcome {
    moved: Vec<(NodeId, usize)>,
    stats: BoundaryRefineStats,
    improved: bool,
}

#[allow(clippy::too_many_arguments)]
fn refine_boundary_inner(
    state: &mut PartitionState<'_>,
    evaluator: &CostEvaluator,
    config: &FpartConfig,
    refine: &RefineConfig,
    budget: Option<&BudgetTracker>,
    metrics: &mut Metrics,
    dirty: Option<&[bool]>,
) -> BoundaryRefineStats {
    let k = state.block_count();
    let mut stats_total = BoundaryRefineStats::default();
    if k < 2 {
        return stats_total;
    }
    // Same loosening as `refine_pairs`: no remainder to protect, so the
    // strict two-block ε²_min gives way to the multi-block coefficient.
    let config = FpartConfig { eps_min_two: config.eps_min_multi, ..config.clone() };
    let config = &config;
    let workers = refine.workers.max(1);
    // Global pair-job counter across rounds: the index a worker-targeted
    // [`crate::FaultPlan`] matches on, and the budget fork identity.
    let mut next_job = 0usize;
    for _ in 0..refine.rounds {
        if budget.is_some_and(BudgetTracker::check) {
            break;
        }
        let mut pairs = top_crossing_pairs(state, refine.pairs_per_round);
        if let Some(dirty) = dirty {
            pairs.retain(|&(a, b)| dirty[a] || dirty[b]);
        }
        if pairs.is_empty() {
            break;
        }
        // Fork every job's budget before the fan-out, in pair order, so
        // all jobs of a round see the same remaining-budget snapshot no
        // matter how many workers execute them.
        let forks: Option<Vec<BudgetTracker>> =
            budget.map(|t| (0..pairs.len()).map(|i| t.fork_worker(next_job + i)).collect());
        let forks_ref = forks.as_deref();
        let pairs_ref = &pairs[..];
        let snapshot: &PartitionState<'_> = state;
        // Chrome-trace lane of each job: mirror `run_indexed`'s chunked
        // worker layout (lane 0 stays the enclosing flow). Lanes are
        // cosmetic — span *records* never depend on them.
        let lane_chunk = pairs.len().div_ceil(workers.min(pairs.len()));
        let results = run_indexed_caught_metered(pairs.len(), workers, metrics, &|i, child| {
            let (a, b) = pairs_ref[i];
            child.bump(Counter::PairJobs);
            child.set_span_lane(1 + (i / lane_chunk) as u32);
            child.span_open(crate::obs::SpanKind::PairJob, 0);
            let mut local = snapshot.clone();
            let mut boundary: Vec<NodeId> = Vec::new();
            boundary_cells(&local, a, b, &mut boundary);
            if boundary.is_empty() {
                child.span_close(crate::obs::SpanStats::default());
                return PairOutcome {
                    moved: Vec::new(),
                    stats: BoundaryRefineStats::default(),
                    improved: false,
                };
            }
            let ctx = ImproveContext {
                evaluator,
                config,
                remainder: NO_REMAINDER,
                minimum_reached: true, // strict S_MAX cap during refinement
                budget: forks_ref.map(|f| &f[i]),
            };
            let started = child.start();
            let stats = improve_cells_metered(&mut local, &[a, b], &boundary, &ctx, child);
            child.stop_improve(ImproveKind::Boundary, started);
            child.bump(Counter::BoundaryRefinements);
            child.span_close(crate::obs::SpanStats {
                boundary: boundary.len() as u64,
                moves: stats.moves as u64,
                gain: stats.initial_key.cut as i64 - stats.final_key.cut as i64,
                ..crate::obs::SpanStats::default()
            });
            let moved: Vec<(NodeId, usize)> = boundary
                .iter()
                .copied()
                .filter_map(|v| {
                    let to = local.block_of(v);
                    (to != snapshot.block_of(v)).then_some((v, to))
                })
                .collect();
            PairOutcome {
                moved,
                stats: BoundaryRefineStats {
                    calls: 1,
                    moves: stats.moves,
                    improved: usize::from(stats.final_key.better_than(&stats.initial_key)),
                    boundary: boundary.len(),
                },
                improved: stats.final_key.better_than(&stats.initial_key),
            }
        });
        next_job += pairs.len();
        // Commit in pair-index order: absorb every job's budget
        // consumption (even a panicked job's — its fault counts), apply
        // surviving moves, drop a panicked pair's moves deterministically.
        let mut improved = false;
        for (i, result) in results.into_iter().enumerate() {
            if let (Some(t), Some(forks)) = (budget, &forks) {
                t.absorb(&forks[i]);
            }
            match result {
                Ok(outcome) => {
                    stats_total.calls += outcome.stats.calls;
                    stats_total.moves += outcome.stats.moves;
                    stats_total.improved += outcome.stats.improved;
                    stats_total.boundary += outcome.stats.boundary;
                    state.apply(outcome.moved);
                    improved |= outcome.improved;
                }
                Err(_panic) => {
                    metrics.bump(Counter::PairPanics);
                }
            }
        }
        if !improved {
            break;
        }
    }
    stats_total
}

/// Aggregated result of one [`refine_boundary_metered`] level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundaryRefineStats {
    /// Boundary improve calls executed.
    pub calls: usize,
    /// Cell moves retained across all calls.
    pub moves: usize,
    /// Calls that improved the solution key.
    pub improved: usize,
    /// Boundary cells examined, summed over all calls.
    pub boundary: usize,
}

/// Collects into `out` the cells of blocks `a` and `b` incident to at
/// least one net with pins in both — the cells whose moves can change
/// the pair's cut. The buffer is cleared and reused; cells appear once,
/// in node-id order.
fn boundary_cells(state: &PartitionState<'_>, a: usize, b: usize, out: &mut Vec<NodeId>) {
    out.clear();
    let graph = state.graph();
    for v in graph.node_ids() {
        let c = state.block_of(v);
        if c != a && c != b {
            continue;
        }
        let other = if c == a { b } else { a };
        if graph.nets(v).iter().any(|&net| state.net_pins_in(net, other) > 0) {
            out.push(v);
        }
    }
}

/// The block pairs with the most crossing nets, each block used at most
/// once (so one round touches many regions).
#[must_use]
pub fn top_crossing_pairs(state: &PartitionState<'_>, limit: usize) -> Vec<(usize, usize)> {
    let k = state.block_count();
    let graph = state.graph();
    let mut crossings = std::collections::HashMap::<(usize, usize), usize>::new();
    for net in graph.net_ids() {
        let net: NetId = net;
        if state.net_span(net) < 2 {
            continue;
        }
        let blocks: Vec<usize> = (0..k).filter(|&b| state.net_pins_in(net, b) > 0).collect();
        for i in 0..blocks.len() {
            for j in (i + 1)..blocks.len() {
                *crossings.entry((blocks[i], blocks[j])).or_default() += 1;
            }
        }
    }
    let mut pairs: Vec<((usize, usize), usize)> = crossings.into_iter().collect();
    pairs.sort_by_key(|&((a, b), c)| (std::cmp::Reverse(c), a, b));
    let mut used = vec![false; k];
    let mut out = Vec::new();
    for ((a, b), _) in pairs {
        if out.len() >= limit {
            break;
        }
        if !used[a] && !used[b] {
            used[a] = true;
            used[b] = true;
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::DeviceConstraints;
    use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};

    #[test]
    fn top_pairs_orders_by_crossings() {
        let (g, planted) = clustered_circuit(&ClusteredConfig::new("cl", 3, 10), 3);
        let state = PartitionState::from_assignment(&g, planted, 3);
        let pairs = top_crossing_pairs(&state, 3);
        assert!(!pairs.is_empty());
        // Each block appears at most once.
        let mut seen = std::collections::HashSet::new();
        for (a, b) in &pairs {
            assert!(seen.insert(*a));
            assert!(seen.insert(*b));
        }
    }

    #[test]
    fn refine_improves_a_scrambled_partition() {
        let cfg = ClusteredConfig::new("cl", 3, 20);
        let (g, planted) = clustered_circuit(&cfg, 7);
        // Scramble: swap every 4th node's cluster.
        let mut assignment = planted.clone();
        for i in (0..assignment.len()).step_by(4) {
            assignment[i] = (assignment[i] + 1) % 3;
        }
        let mut state = PartitionState::from_assignment(&g, assignment, 3);
        let before = state.cut_count();
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(25, 100), &config, 3, g.terminal_count());
        let improved = refine_pairs(&mut state, &evaluator, &config, &RefineConfig::default());
        state.assert_consistent();
        assert!(improved > 0);
        assert!(state.cut_count() < before);
    }

    #[test]
    fn boundary_refine_improves_a_scrambled_partition() {
        let cfg = ClusteredConfig::new("cl", 3, 20);
        let (g, planted) = clustered_circuit(&cfg, 7);
        let mut assignment = planted.clone();
        for i in (0..assignment.len()).step_by(4) {
            assignment[i] = (assignment[i] + 1) % 3;
        }
        let mut state = PartitionState::from_assignment(&g, assignment, 3);
        let before = state.cut_count();
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(25, 100), &config, 3, g.terminal_count());
        let mut metrics = Metrics::enabled();
        let improved = refine_boundary_metered(
            &mut state,
            &evaluator,
            &config,
            &RefineConfig::default(),
            None,
            &mut metrics,
        );
        state.assert_consistent();
        assert!(improved.improved > 0);
        assert!(improved.calls >= improved.improved);
        assert!(improved.moves > 0);
        assert!(state.cut_count() < before);
        assert_eq!(metrics.get(Counter::BoundaryRefinements), improved.calls as u64);
        assert_eq!(metrics.improve_time(ImproveKind::Boundary).count, improved.calls as u64);
    }

    #[test]
    fn boundary_cells_touch_crossing_nets_only() {
        let (g, planted) = clustered_circuit(&ClusteredConfig::new("cl", 3, 10), 3);
        let state = PartitionState::from_assignment(&g, planted, 3);
        let mut cells = Vec::new();
        boundary_cells(&state, 0, 1, &mut cells);
        for &v in &cells {
            let c = state.block_of(v);
            assert!(c == 0 || c == 1);
            let other = usize::from(c == 0);
            assert!(g.nets(v).iter().any(|&e| state.net_pins_in(e, other) > 0));
        }
        // Completeness: every pair cell with a crossing net is listed.
        let listed: std::collections::HashSet<_> = cells.iter().copied().collect();
        for v in g.node_ids() {
            let c = state.block_of(v);
            if c != 0 && c != 1 {
                continue;
            }
            let other = usize::from(c == 0);
            if g.nets(v).iter().any(|&e| state.net_pins_in(e, other) > 0) {
                assert!(listed.contains(&v), "missing boundary cell {v:?}");
            }
        }
    }

    #[test]
    fn boundary_refine_with_expired_budget_is_a_noop() {
        let (g, planted) = clustered_circuit(&ClusteredConfig::new("cl", 3, 12), 5);
        let mut assignment = planted;
        for i in (0..assignment.len()).step_by(3) {
            assignment[i] = (assignment[i] + 1) % 3;
        }
        let mut state = PartitionState::from_assignment(&g, assignment.clone(), 3);
        let config = FpartConfig::default();
        let evaluator =
            CostEvaluator::new(DeviceConstraints::new(25, 100), &config, 3, g.terminal_count());
        let budget = crate::budget::RunBudget { max_passes: Some(0), ..Default::default() };
        let tracker = BudgetTracker::new(&budget, None);
        assert!(tracker.before_pass());
        let improved = refine_boundary_metered(
            &mut state,
            &evaluator,
            &config,
            &RefineConfig::default(),
            Some(&tracker),
            &mut Metrics::disabled(),
        );
        assert_eq!(improved, BoundaryRefineStats::default());
        assert_eq!(state.assignment(), &assignment[..], "stopped refinement moved cells");
    }

    #[test]
    fn single_block_is_a_noop() {
        let (g, _) = clustered_circuit(&ClusteredConfig::new("cl", 2, 8), 1);
        let mut state = PartitionState::single_block(&g);
        let config = FpartConfig::default();
        let evaluator = CostEvaluator::new(DeviceConstraints::new(100, 100), &config, 1, 0);
        assert_eq!(refine_pairs(&mut state, &evaluator, &config, &RefineConfig::default()), 0);
    }
}
