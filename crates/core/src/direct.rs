//! Direct (non-recursive) k-way partitioning.
//!
//! The paper's method peels one block per iteration; the natural
//! alternative — which Sanchis' algorithm was originally formulated
//! for — fixes `k`, seeds `k` blocks simultaneously, and improves them
//! together. This module implements that strategy as a comparison
//! point: for `k = M, M+1, …` it grows `k` BFS clusters from spread
//! seeds, refines with multi-way and pairwise improvement, and returns
//! the first feasible `k`.
//!
//! The paper's §3 argument predicts this should underperform the guided
//! recursive flow on I/O-tight instances (no remainder to absorb the
//! slack); the `direct` experiment binary quantifies that.

use fpart_device::{lower_bound, DeviceConstraints};
use fpart_hypergraph::{Hypergraph, NodeId};

use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::driver::{PartitionError, PartitionOutcome};
use crate::engine::{improve, ImproveContext, NO_REMAINDER};
use crate::refine::{refine_pairs, RefineConfig};
use crate::state::PartitionState;
use crate::trace::Trace;

/// Options of the direct k-way mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectConfig {
    /// How many `k` values to try beyond the lower bound before giving
    /// up (`k = M .. M + extra_attempts`).
    pub extra_attempts: usize,
    /// All-block improvement is only run while `k` is at most this (the
    /// direction-bucket count grows quadratically with `k`); larger `k`
    /// uses pairwise refinement only.
    pub all_block_limit: usize,
    /// Pairwise refinement schedule per attempt.
    pub refine: RefineConfig,
}

impl Default for DirectConfig {
    fn default() -> Self {
        DirectConfig {
            extra_attempts: 8,
            all_block_limit: 12,
            refine: RefineConfig { rounds: 6, pairs_per_round: 12, workers: 1 },
        }
    }
}

/// Partitions `graph` by direct k-way search: seed `k` blocks, improve,
/// accept the first feasible `k ≥ M`.
///
/// # Errors
///
/// Returns [`PartitionError::OversizedNode`] for unplaceable cells and
/// [`PartitionError::IterationLimit`] when no feasible `k` is found
/// within `M + extra_attempts`.
///
/// # Example
///
/// ```
/// use fpart_core::{partition_direct, DirectConfig, FpartConfig};
/// use fpart_device::DeviceConstraints;
/// use fpart_hypergraph::gen::{clustered_circuit, ClusteredConfig};
///
/// # fn main() -> Result<(), fpart_core::PartitionError> {
/// let (circuit, _) = clustered_circuit(&ClusteredConfig::new("demo", 4, 20), 1);
/// let outcome = partition_direct(
///     &circuit,
///     DeviceConstraints::new(25, 100),
///     &FpartConfig::default(),
///     &DirectConfig::default(),
/// )?;
/// assert!(outcome.feasible);
/// assert_eq!(outcome.device_count, 4); // the planted clustering
/// # Ok(())
/// # }
/// ```
pub fn partition_direct(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    direct: &DirectConfig,
) -> Result<PartitionOutcome, PartitionError> {
    config.validate();
    for v in graph.node_ids() {
        let size = graph.node_size(v);
        if u64::from(size) > constraints.s_max {
            return Err(PartitionError::OversizedNode { node: v, size, s_max: constraints.s_max });
        }
    }
    let started = std::time::Instant::now();
    let m = lower_bound(graph, constraints);
    if graph.node_count() == 0 {
        let state = PartitionState::single_block(graph);
        return Ok(crate::driver::assemble_outcome(
            graph,
            &state,
            constraints,
            0,
            0,
            0,
            0,
            started.elapsed(),
            Trace::disabled(),
            crate::obs::Metrics::disabled(),
            crate::budget::Completion::Complete,
        ));
    }
    let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());

    for attempt in 0..=direct.extra_attempts {
        let k = (m + attempt).max(1).min(graph.node_count());
        let assignment = seeded_clusters(graph, k, config.seed ^ attempt as u64);
        let mut state = PartitionState::from_assignment(graph, assignment, k);

        if k >= 2 && k <= direct.all_block_limit {
            let all: Vec<usize> = (0..k).collect();
            let ctx = ImproveContext {
                evaluator: &evaluator,
                config,
                remainder: NO_REMAINDER,
                minimum_reached: true,
                budget: None,
            };
            improve(&mut state, &all, &ctx);
        }
        refine_pairs(&mut state, &evaluator, config, &direct.refine);

        let feasible =
            (0..k).all(|b| constraints.fits(state.block_size(b), state.block_terminals(b)));
        if feasible {
            return Ok(crate::driver::assemble_outcome(
                graph,
                &state,
                constraints,
                m,
                attempt + 1,
                0,
                0,
                started.elapsed(),
                Trace::disabled(),
                crate::obs::Metrics::disabled(),
                crate::budget::Completion::Complete,
            ));
        }
    }
    Err(PartitionError::IterationLimit { iterations: direct.extra_attempts + 1 })
}

/// Grows `k` BFS clusters from spread seeds: the first seed is the
/// highest-degree cell, each further seed maximizes BFS distance from
/// all previous seeds; growth is round-robin, smallest cluster first,
/// claiming the most-connected frontier cell (any free cell when the
/// frontier dries up).
fn seeded_clusters(graph: &Hypergraph, k: usize, seed_salt: u64) -> Vec<u32> {
    let n = graph.node_count();
    let mut assignment = vec![u32::MAX; n];

    // Spread seeds by repeated farthest-point BFS.
    let first = (seed_salt as usize) % n;
    let mut seeds = vec![NodeId::from_index(first)];
    while seeds.len() < k.min(n) {
        let distances = fpart_hypergraph::traverse::bfs(graph, &seeds);
        let next = distances
            .farthest()
            .map(|(v, _)| v)
            .filter(|v| !seeds.contains(v))
            .or_else(|| {
                graph.node_ids().find(|v| !seeds.contains(v) && distances.distance(*v).is_none())
            })
            .or_else(|| graph.node_ids().find(|v| !seeds.contains(v)));
        match next {
            Some(v) => seeds.push(v),
            None => break,
        }
    }
    for (b, &s) in seeds.iter().enumerate() {
        assignment[s.index()] = b as u32;
    }

    // Round-robin growth, smallest cluster first.
    let mut sizes = vec![0u64; k];
    for &s in &seeds {
        sizes[assignment[s.index()] as usize] = u64::from(graph.node_size(s));
    }
    let mut frontier: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (b, &s) in seeds.iter().enumerate() {
        push_neighbors(graph, s, &assignment, &mut frontier[b]);
    }
    let mut remaining = n - seeds.len();
    while remaining > 0 {
        let b = (0..k).min_by_key(|&b| sizes[b]).expect("k >= 1");
        // Claim a free frontier cell, or any free cell.
        let pick = loop {
            match frontier[b].pop() {
                Some(v) if assignment[v.index()] == u32::MAX => break Some(v),
                Some(_) => {}
                None => {
                    break graph.node_ids().find(|v| assignment[v.index()] == u32::MAX);
                }
            }
        };
        let Some(v) = pick else { break };
        assignment[v.index()] = b as u32;
        sizes[b] += u64::from(graph.node_size(v));
        push_neighbors(graph, v, &assignment, &mut frontier[b]);
        remaining -= 1;
    }
    assignment
}

fn push_neighbors(graph: &Hypergraph, v: NodeId, assignment: &[u32], frontier: &mut Vec<NodeId>) {
    for &net in graph.nets(v) {
        for &u in graph.pins(net) {
            if assignment[u.index()] == u32::MAX {
                frontier.push(u);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_device::Device;
    use fpart_hypergraph::gen::{clustered_circuit, window_circuit, ClusteredConfig, WindowConfig};

    #[test]
    fn direct_mode_partitions_feasibly() {
        let g = window_circuit(&WindowConfig::new("w", 300, 24), 7);
        let constraints = Device::XC3020.constraints(0.9);
        let out =
            partition_direct(&g, constraints, &FpartConfig::default(), &DirectConfig::default())
                .expect("runs");
        assert!(out.feasible);
        assert!(out.device_count >= out.lower_bound);
        let total: u64 = out.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total, g.total_size());
    }

    #[test]
    fn direct_mode_finds_planted_clusters() {
        let cfg = ClusteredConfig::new("cl", 4, 20);
        let (g, _) = clustered_circuit(&cfg, 11);
        let constraints = DeviceConstraints::new(25, 100);
        let out =
            partition_direct(&g, constraints, &FpartConfig::default(), &DirectConfig::default())
                .expect("runs");
        assert!(out.feasible);
        assert_eq!(out.device_count, 4);
    }

    #[test]
    fn seeded_clusters_cover_everything() {
        let g = window_circuit(&WindowConfig::new("w", 100, 8), 3);
        for k in [1usize, 2, 5, 9] {
            let a = seeded_clusters(&g, k, 1);
            assert!(a.iter().all(|&b| (b as usize) < k));
            // Every block is non-empty when k ≤ n.
            for b in 0..k as u32 {
                assert!(a.contains(&b), "block {b} empty for k={k}");
            }
        }
    }

    #[test]
    fn oversized_node_is_rejected() {
        let mut b = fpart_hypergraph::HypergraphBuilder::new();
        let x = b.add_node("x", 99);
        let y = b.add_node("y", 1);
        b.add_net("e", [x, y]).unwrap();
        let g = b.finish().unwrap();
        let err = partition_direct(
            &g,
            DeviceConstraints::new(50, 10),
            &FpartConfig::default(),
            &DirectConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::OversizedNode { .. }));
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = fpart_hypergraph::HypergraphBuilder::new().finish().unwrap();
        let out = partition_direct(
            &g,
            DeviceConstraints::new(10, 10),
            &FpartConfig::default(),
            &DirectConfig::default(),
        )
        .expect("runs");
        assert_eq!(out.device_count, 0);
    }
}
