//! FPART: iterative-improvement-based multi-way netlist partitioning for
//! FPGAs.
//!
//! This crate reproduces the partitioning system of Krupnova & Saucier
//! (DATE 1999). Given a circuit hypergraph
//! ([`fpart_hypergraph::Hypergraph`]) and an FPGA device
//! ([`fpart_device::DeviceConstraints`]), [`partition`] finds a feasible
//! multi-way partition — every block within the device's CLB and IOB
//! budgets — using as few devices as possible.
//!
//! The method is built from classical iterative-improvement machinery —
//! Fiduccia–Mattheyses passes, Krishnamurthy second-level gains, and
//! Sanchis' multi-way generalization — guided by the paper's
//! FPGA-specific devices:
//!
//! * an **infeasibility-distance** cost function and lexicographic
//!   solution key ([`cost`]);
//! * asymmetric **feasible-move regions** biasing moves *out of* the
//!   remainder ([`constraints`]);
//! * dual **solution stacks** of semi-feasible and infeasible restart
//!   points ([`stack`]);
//! * a scheduled set of improvement passes per peeling iteration
//!   ([`driver`]).
//!
//! # Quickstart
//!
//! ```
//! use fpart_core::{partition, FpartConfig};
//! use fpart_device::Device;
//! use fpart_hypergraph::gen::{window_circuit, WindowConfig};
//!
//! # fn main() -> Result<(), fpart_core::PartitionError> {
//! let circuit = window_circuit(&WindowConfig::new("demo", 400, 32), 42);
//! let device = Device::XC3020.constraints(0.9);
//! let outcome = partition(&circuit, device, &FpartConfig::default())?;
//! assert!(outcome.feasible);
//! println!("{} devices (lower bound {})", outcome.device_count, outcome.lower_bound);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![warn(clippy::pedantic)]
// Pedantic opt-outs: the algorithm code is index-heavy (block ids, cell
// ids, gain offsets) and intentionally casts between the narrow on-disk
// integer types and usize; flagging every site would bury real findings.
#![allow(clippy::cast_possible_truncation)]
#![allow(clippy::cast_possible_wrap)]
#![allow(clippy::cast_precision_loss)]
#![allow(clippy::cast_sign_loss)]
#![allow(clippy::module_name_repetitions)]
#![allow(clippy::missing_panics_doc)]
#![allow(clippy::must_use_candidate)]
#![allow(clippy::similar_names)]
#![allow(clippy::struct_excessive_bools)]
#![allow(clippy::too_many_lines)]
// Tests assert bit-identical determinism, so exact float comparison is
// the point, not an accident.
#![cfg_attr(test, allow(clippy::float_cmp, clippy::many_single_char_names))]

pub mod assignment;
pub mod bucket;
pub mod budget;
pub mod checkpoint;
pub mod config;
pub mod constraints;
pub mod cost;
pub mod direct;
pub mod driver;
pub mod eco;
pub mod engine;
pub mod fm;
pub mod gain;
pub mod hetero;
pub mod initial;
pub mod interconnect;
pub mod json;
pub mod memo;
pub mod multilevel;
pub mod obs;
pub mod parallel;
pub mod persist;
pub mod refine;
pub mod report;
pub mod server;
pub mod stack;
pub mod state;
pub mod trace;
pub mod verify;

pub use assignment::{
    read_assignment, write_assignment, write_assignment_versioned, ReadAssignmentError,
    ASSIGNMENT_FORMAT_VERSION,
};
pub use budget::{
    BudgetSnapshot, BudgetTracker, CancelToken, Completion, FaultAction, FaultPlan, MemoryBudget,
    RunBudget,
};
pub use checkpoint::{
    fingerprint_run, partition_restarts_durable, read_checkpoint, write_checkpoint, Checkpoint,
    CheckpointWriter, ReadCheckpointError, SavedRestart,
};
pub use config::FpartConfig;
pub use cost::{classify, CostEvaluator, FeasibilityClass, KeyTracker, SolutionKey};
pub use direct::{partition_direct, DirectConfig};
pub use driver::{
    partition, partition_observed, partition_restarts, partition_restarts_observed,
    partition_traced, BlockReport, FailedRestart, PartitionError, PartitionOutcome, RestartsReport,
};
pub use eco::{
    repartition_eco, repartition_eco_observed, repartition_eco_restarts,
    repartition_eco_restarts_observed, repartition_edited, repartition_edited_observed, EcoConfig,
    EcoError, EcoReport, EcoRun,
};
pub use engine::{
    improve, improve_cells_metered, improve_metered, ImproveContext, ImproveStats, NO_REMAINDER,
};
pub use hetero::{partition_hetero, HeteroOutcome};
pub use initial::{bipartition_remainder, InitialMethod};
pub use interconnect::InterconnectReport;
pub use json::{Json, JsonParseError};
pub use memo::{CacheStats, CachedHierarchy, HierarchyKey, MemoConfig, MemoSolution, MemoStore};
pub use multilevel::{
    partition_multilevel, partition_multilevel_observed, partition_multilevel_restarts,
    partition_multilevel_restarts_observed, split_thread_budget, MultilevelConfig,
};
pub use obs::{
    event_to_json, Counter, EventSink, FanoutSink, Heartbeat, JsonlSink, Metrics, Observer,
    SpanEvent, SpanKind, SpanRecord, SpanStack, SpanStats, TimeStat, SCHEMA_VERSION,
};
pub use persist::{write_atomic, AtomicFile};
pub use report::QualityReport;
pub use server::{RunParams, Server, ServerConfig};
pub use state::PartitionState;
pub use trace::{ImproveKind, Trace, TraceEvent};
pub use verify::{verify_assignment, Verification, Violation};
