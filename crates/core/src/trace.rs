//! Execution traces: which improvement passes ran, what they achieved,
//! and how solutions were classified — the data behind the paper's
//! Figures 1 and 2.

use fpart_device::BlockUsage;

use crate::cost::{FeasibilityClass, SolutionKey};
use crate::initial::InitialMethod;

/// Which slot of the §3.1 improvement schedule an `Improve` call filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImproveKind {
    /// `Improve(R_k, P_k)` — the two lately partitioned blocks.
    LastPair,
    /// `Improve(P₀ … P_k, R_k)` — all blocks (only when `M ≤ N_small`).
    AllBlocks,
    /// `Improve(P_MIN_size, R_k)`.
    MinSize,
    /// `Improve(P_MIN_IO, R_k)`.
    MinIo,
    /// `Improve(P_MIN_F, R_k)` — the maximum-free-space block.
    MaxFree,
    /// The final `Improve(P_i, R_k)` sweep at `k = M`.
    FinalSweep,
    /// Boundary-only refinement of one uncoarsening level in the
    /// n-level multilevel flow (not part of the §3.1 schedule).
    Boundary,
}

impl ImproveKind {
    /// Every schedule slot, in schedule order.
    pub const ALL: [ImproveKind; 7] = [
        ImproveKind::LastPair,
        ImproveKind::AllBlocks,
        ImproveKind::MinSize,
        ImproveKind::MinIo,
        ImproveKind::MaxFree,
        ImproveKind::FinalSweep,
        ImproveKind::Boundary,
    ];

    /// Stable `snake_case` name, used by serialized metrics/traces and the
    /// CLI's `--trace` rendering. These strings are a compatibility
    /// surface — do not change them without bumping
    /// [`crate::obs::SCHEMA_VERSION`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ImproveKind::LastPair => "last_pair",
            ImproveKind::AllBlocks => "all_blocks",
            ImproveKind::MinSize => "min_size",
            ImproveKind::MinIo => "min_io",
            ImproveKind::MaxFree => "max_free",
            ImproveKind::FinalSweep => "final_sweep",
            ImproveKind::Boundary => "boundary",
        }
    }

    /// Dense index of this slot in [`ImproveKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One recorded driver event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A peeling iteration began.
    IterationStart {
        /// 1-based iteration number (`k` in Algorithm 1).
        iteration: usize,
        /// Remainder size entering the iteration.
        remainder_size: u64,
        /// Remainder terminal count entering the iteration.
        remainder_terminals: usize,
    },
    /// The remainder was constructively bipartitioned.
    Bipartition {
        /// Iteration number.
        iteration: usize,
        /// Which constructive method won.
        method: InitialMethod,
        /// Size of the peeled block.
        peeled_size: u64,
        /// Terminal count of the peeled block.
        peeled_terminals: usize,
    },
    /// One `Improve(...)` call completed.
    Improve {
        /// Iteration number.
        iteration: usize,
        /// Schedule slot.
        kind: ImproveKind,
        /// Blocks involved.
        blocks: Vec<usize>,
        /// Key before the call.
        initial_key: SolutionKey,
        /// Key after the call.
        final_key: SolutionKey,
        /// FM passes executed.
        passes: usize,
        /// Moves retained.
        moves: usize,
        /// Stack restarts performed.
        restarts: usize,
    },
    /// A periodic progress heartbeat, emitted by long-running phases
    /// when the observer's [`Heartbeat`](crate::obs::Heartbeat) is
    /// armed (the CLI's `--progress`). Throttled; off by default.
    Progress {
        /// Which phase is running.
        phase: crate::obs::SpanKind,
        /// Hierarchy level of the phase (uncoarsen level, peeling
        /// iteration, …).
        level: usize,
        /// FM passes executed so far by this run.
        passes: u64,
        /// Moves retained so far by this run.
        moves: u64,
        /// Best cut known so far (`None` when no solution is built yet).
        cut: Option<usize>,
        /// Wall time since the first heartbeat, in milliseconds.
        elapsed_ms: u64,
        /// Remaining wall-clock budget, in milliseconds (`None` when
        /// the run has no deadline).
        deadline_remaining_ms: Option<u64>,
        /// Remaining pass budget (`None` when unbounded).
        passes_remaining: Option<u64>,
    },
    /// End-of-iteration solution snapshot (Figure 2 data: one occupancy
    /// point per block).
    Solution {
        /// Iteration number.
        iteration: usize,
        /// Feasibility classification of the snapshot.
        class: FeasibilityClass,
        /// Per-block occupancy points.
        blocks: Vec<BlockUsage>,
    },
}

/// An append-only trace of driver events. A disabled trace records
/// nothing and costs one branch per event.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled (recording) trace.
    #[must_use]
    pub fn enabled() -> Self {
        Trace { events: Vec::new(), enabled: true }
    }

    /// Creates a disabled (no-op) trace.
    #[must_use]
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// Returns whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled). The closure keeps event
    /// construction lazy.
    pub fn record(&mut self, event: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.events.push(event());
        }
    }

    /// The recorded events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates only the `Improve` events.
    pub fn improve_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| matches!(e, TraceEvent::Improve { .. }))
    }
}

/// A `Trace` is the in-memory [`EventSink`](crate::obs::EventSink):
/// producers check [`Trace::is_enabled`] first, so a disabled trace
/// never sees (or clones) an event.
impl crate::obs::EventSink for Trace {
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn record_event(&mut self, event: &TraceEvent) {
        if self.enabled {
            self.events.push(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(|| panic!("constructed an event on a disabled trace"));
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_appends() {
        let mut t = Trace::enabled();
        t.record(|| TraceEvent::IterationStart {
            iteration: 1,
            remainder_size: 100,
            remainder_terminals: 10,
        });
        assert_eq!(t.events().len(), 1);
        assert!(t.is_enabled());
    }

    #[test]
    fn improve_filter() {
        let mut t = Trace::enabled();
        t.record(|| TraceEvent::IterationStart {
            iteration: 1,
            remainder_size: 0,
            remainder_terminals: 0,
        });
        t.record(|| TraceEvent::Improve {
            iteration: 1,
            kind: ImproveKind::LastPair,
            blocks: vec![0, 1],
            initial_key: dummy_key(),
            final_key: dummy_key(),
            passes: 1,
            moves: 0,
            restarts: 0,
        });
        assert_eq!(t.improve_events().count(), 1);
    }

    fn dummy_key() -> SolutionKey {
        SolutionKey {
            feasible_blocks: 0,
            total_blocks: 1,
            infeasibility: 0.0,
            terminal_sum: 0,
            external_balance: 0.0,
            cut: 0,
        }
    }
}
