//! Cell move gains: first-level (cut delta) and second-level
//! (Krishnamurthy look-ahead) gains for multi-way moves.
//!
//! For a cell `v` in block `c` and a target block `d ≠ c`, a net `e ∋ v`
//! with `n` interior pins contributes to the first-level gain:
//!
//! * `+1` when all other pins of `e` are already in `d`
//!   (`pins_in(e, d) == n − 1`) — moving `v` uncuts the net;
//! * `−1` when `e` lies entirely in `c` (`pins_in(e, c) == n`) — moving
//!   `v` cuts it.
//!
//! This is the actual change in the number of multi-block nets, the
//! classical FM objective the paper keeps ("the net gain is already not
//! directly related with the optimization objective"); the FPGA-specific
//! objectives enter through solution selection instead (see
//! [`crate::cost`]).
//!
//! The second-level gain is the Krishnamurthy/Sanchis look-ahead used only
//! to break first-level ties: it counts nets that would become one
//! unlocked move away from leaving (entering) the cut.

use fpart_hypergraph::NodeId;

use crate::state::PartitionState;

/// First-level gain of moving `node` from its block to `to`.
///
/// # Panics
///
/// Panics (in debug builds) if `to` equals the node's current block.
#[must_use]
pub fn level1_gain(state: &PartitionState<'_>, node: NodeId, to: usize) -> i32 {
    let from = state.block_of(node);
    debug_assert_ne!(from, to, "gain is undefined for a no-op move");
    let graph = state.graph();
    let mut gain = 0i32;
    for &net in graph.nets(node) {
        let n = graph.pins(net).len() as u32;
        if state.net_pins_in(net, to) == n - 1 {
            gain += 1;
        }
        if state.net_pins_in(net, from) == n {
            gain -= 1;
        }
    }
    gain
}

/// I/O-pin gain of moving `node` from its block to `to`: the reduction
/// in `T_from + T_to` (the only block terminal counts a single move can
/// change). This is the paper's §5 future-work objective.
///
/// The per-net transition logic mirrors
/// [`PartitionState::move_node`]'s exact bookkeeping, evaluated without
/// applying the move.
///
/// # Panics
///
/// Panics (in debug builds) if `to` equals the node's current block.
#[must_use]
pub fn io_gain(state: &PartitionState<'_>, node: NodeId, to: usize) -> i32 {
    let from = state.block_of(node);
    debug_assert_ne!(from, to, "gain is undefined for a no-op move");
    let graph = state.graph();
    let mut gain = 0i32;
    for &net in graph.nets(node) {
        gain += io_gain_net(
            state.net_pins_in(net, from),
            state.net_pins_in(net, to),
            state.net_span(net),
            graph.net_has_terminal(net),
        );
    }
    gain
}

/// One net's contribution to the I/O-pin gain of moving a cell out of a
/// block holding `da` of the net's pins (the cell included) into a block
/// holding `db`, with the net currently spanning `span` blocks.
///
/// This is the per-net term [`io_gain`] sums; exposing it lets the pass
/// engine apply exact *deltas* to stored neighbour gains — only nets the
/// moved cell touches can change a neighbour's gain, and only for
/// directions involving a block whose pin count (or the net's span)
/// changed.
#[inline]
#[must_use]
pub fn io_gain_net(da: u32, db: u32, span: u32, has_terminal: bool) -> i32 {
    debug_assert!(da >= 1, "the moving cell occupies its own block");
    let mut span1 = span;
    if da == 1 {
        span1 -= 1;
    }
    if db == 0 {
        span1 += 1;
    }
    let exposed0 = span >= 2 || has_terminal;
    let exposed1 = span1 >= 2 || has_terminal;

    let from_before = exposed0; // `from` always touches before
    let from_after = da > 1 && exposed1;
    let to_before = db > 0 && exposed0;
    let to_after = exposed1; // `to` always touches after

    -(i32::from(from_after) - i32::from(from_before) + i32::from(to_after) - i32::from(to_before))
}

/// Second-level gain of moving `node` from its block to `to`, given the
/// per-node lock flags of the current pass.
///
/// A net `e ∋ v` contributes:
///
/// * `+1` when exactly one pin other than `v` lies outside `to` and that
///   pin is unlocked — after moving `v`, one further move can absorb `e`
///   into `to`;
/// * `−1` when `e` is one pin short of lying entirely in `v`'s own block
///   and that outside pin is unlocked — moving `v` away destroys an
///   almost-internal net.
#[must_use]
pub fn level2_gain(state: &PartitionState<'_>, node: NodeId, to: usize, locked: &[bool]) -> i32 {
    let from = state.block_of(node);
    debug_assert_ne!(from, to, "gain is undefined for a no-op move");
    let graph = state.graph();
    let mut gain = 0i32;
    for &net in graph.nets(node) {
        let pins = graph.pins(net);
        let n = pins.len() as u32;
        let outside_to = n - state.net_pins_in(net, to);
        // +1: v plus exactly one other pin outside `to`, that pin unlocked.
        if outside_to == 2 {
            if let Some(w) = pins.iter().find(|&&w| w != node && state.block_of(w) != to) {
                if !locked[w.index()] {
                    gain += 1;
                }
            }
        }
        // −1: net is one outside pin away from being internal to `from`,
        // and that pin could still be pulled in.
        if state.net_pins_in(net, from) == n - 1 {
            if let Some(w) = pins.iter().find(|&&w| state.block_of(w) != from) {
                if !locked[w.index()] {
                    gain -= 1;
                }
            }
        }
    }
    gain
}

/// Generic Krishnamurthy level-`k` gain of moving `node` to `to`
/// (`k ≥ 2`; use [`level1_gain`] for the first level).
///
/// A net `e ∋ v` contributes:
///
/// * `+1` when exactly `k − 1` pins other than `v` lie outside `to` and
///   all of them are unlocked (after moving `v`, `k − 1` further moves
///   can absorb `e` into `to`);
/// * `−1` when exactly `k − 1` pins lie outside `v`'s own block and all
///   of them are unlocked (`e` is `k − 1` moves from internal, which
///   moving `v` away destroys).
///
/// Level 2 coincides with [`level2_gain`]; level 1 of this formula
/// coincides with [`level1_gain`] (the "all unlocked" condition is
/// vacuous for zero pins).
///
/// # Panics
///
/// Panics (in debug builds) if `to` equals the node's current block or
/// `level == 0`.
#[must_use]
pub fn level_gain(
    state: &PartitionState<'_>,
    node: NodeId,
    to: usize,
    locked: &[bool],
    level: u8,
) -> i32 {
    debug_assert!(level >= 1, "levels are 1-based");
    let from = state.block_of(node);
    debug_assert_ne!(from, to, "gain is undefined for a no-op move");
    let graph = state.graph();
    let want = usize::from(level) - 1;
    let mut gain = 0i32;
    for &net in graph.nets(node) {
        let pins = graph.pins(net);
        // Pins outside `to`, excluding v.
        let mut outside_to = 0usize;
        let mut outside_to_unlocked = true;
        // Pins outside `from` (v itself is inside `from`).
        let mut outside_from = 0usize;
        let mut outside_from_unlocked = true;
        for &u in pins {
            let b = state.block_of(u);
            if u != node && b != to {
                outside_to += 1;
                outside_to_unlocked &= !locked[u.index()];
            }
            if b != from {
                outside_from += 1;
                outside_from_unlocked &= !locked[u.index()];
            }
        }
        if outside_to == want && outside_to_unlocked {
            gain += 1;
        }
        if outside_from == want && outside_from_unlocked {
            gain -= 1;
        }
    }
    gain
}

/// One bucket-gain correction produced by [`deltas_for_move`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GainDelta {
    /// The cell whose stored gain changes.
    pub cell: NodeId,
    /// Source block of the affected direction.
    pub from: usize,
    /// Target block of the affected direction.
    pub to: usize,
    /// Amount to add to the stored first-level gain.
    pub delta: i32,
}

/// Computes the first-level gain corrections implied by moving `moved`
/// from block `a` to block `b`.
///
/// `pre_dist` must hold, for every net of `moved` in order, the pin counts
/// `(pins_in(net, a), pins_in(net, b))` captured **before** the move was
/// applied to the state; `state` must already reflect the move. `active`
/// limits the emitted directions (only blocks under improvement carry
/// buckets), and locked or inactive cells are skipped.
#[allow(clippy::too_many_arguments)] // hot path: the tuple of loop state is deliberate
pub fn deltas_for_move(
    state: &PartitionState<'_>,
    moved: NodeId,
    a: usize,
    b: usize,
    pre_dist: &[(u32, u32)],
    active: &[usize],
    locked: &[bool],
    mut emit: impl FnMut(GainDelta),
) {
    let graph = state.graph();
    for (i, &net) in graph.nets(moved).iter().enumerate() {
        let (da0, db0) = pre_dist[i];
        let da1 = da0 - 1;
        let db1 = db0 + 1;
        let n = graph.pins(net).len() as u32;

        // Precompute the four indicator changes for this net.
        let to_a_delta = i32::from(da1 == n - 1) - i32::from(da0 == n - 1);
        let to_b_delta = i32::from(db1 == n - 1) - i32::from(db0 == n - 1);
        let from_a_delta = i32::from(da0 == n) - i32::from(da1 == n);
        let from_b_delta = i32::from(db0 == n) - i32::from(db1 == n);

        if to_a_delta == 0 && to_b_delta == 0 && from_a_delta == 0 && from_b_delta == 0 {
            continue;
        }

        for &u in graph.pins(net) {
            if u == moved || locked[u.index()] {
                continue;
            }
            let c = state.block_of(u);
            if c != a && to_a_delta != 0 {
                emit(GainDelta { cell: u, from: c, to: a, delta: to_a_delta });
            }
            if c != b && to_b_delta != 0 {
                emit(GainDelta { cell: u, from: c, to: b, delta: to_b_delta });
            }
            if c == a && from_a_delta != 0 {
                for &d in active {
                    if d != a {
                        emit(GainDelta { cell: u, from: a, to: d, delta: from_a_delta });
                    }
                }
            }
            if c == b && from_b_delta != 0 {
                for &d in active {
                    if d != b {
                        emit(GainDelta { cell: u, from: b, to: d, delta: from_b_delta });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::{Hypergraph, HypergraphBuilder};

    /// nets: e0 = {0,1}, e1 = {1,2,3}, e2 = {0,3}
    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        b.add_net("e0", [n[0], n[1]]).unwrap();
        b.add_net("e1", [n[1], n[2], n[3]]).unwrap();
        b.add_net("e2", [n[0], n[3]]).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn level1_gain_counts_cut_delta() {
        let g = sample();
        // blocks: {0,1} and {2,3}; cut nets: e1, e2.
        let state = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        // moving node 0 to block 1: e0 becomes cut (−1), e2 uncut (+1) → 0
        assert_eq!(level1_gain(&state, NodeId::from_index(0), 1), 0);
        // moving node 1 to block 1: e0 cut (−1), e1 uncut (+1) → 0
        assert_eq!(level1_gain(&state, NodeId::from_index(1), 1), 0);
        // moving node 3 to block 0: e1 stays cut, e2 uncut (+1) → +1
        assert_eq!(level1_gain(&state, NodeId::from_index(3), 0), 1);
    }

    #[test]
    fn level1_gain_matches_actual_cut_change() {
        let g = sample();
        for assignment in [vec![0, 0, 1, 1], vec![0, 1, 0, 1], vec![1, 0, 0, 1]] {
            for node in 0..4u32 {
                let node = NodeId::from_index(node as usize);
                let mut state = PartitionState::from_assignment(&g, assignment.clone(), 2);
                let from = state.block_of(node);
                let to = 1 - from;
                let predicted = level1_gain(&state, node, to);
                let before = state.cut_count() as i32;
                state.move_node(node, to);
                let after = state.cut_count() as i32;
                assert_eq!(predicted, before - after, "node {node:?} {assignment:?}");
            }
        }
    }

    #[test]
    fn io_gain_matches_actual_terminal_change() {
        let g = sample();
        for assignment in [vec![0, 0, 1, 1], vec![0, 1, 0, 1], vec![1, 0, 0, 1]] {
            for node in 0..4u32 {
                let node = NodeId::from_index(node as usize);
                let mut state = PartitionState::from_assignment(&g, assignment.clone(), 2);
                let from = state.block_of(node);
                let to = 1 - from;
                let predicted = io_gain(&state, node, to);
                let before = (state.block_terminals(from) + state.block_terminals(to)) as i32;
                state.move_node(node, to);
                let after = (state.block_terminals(from) + state.block_terminals(to)) as i32;
                assert_eq!(predicted, before - after, "node {node:?} {assignment:?}");
            }
        }
    }

    #[test]
    fn io_gain_counts_terminal_nets() {
        // Terminal net {0,3} (e2): moving 3 to block 0 uncuts it but the
        // terminal keeps it exposed to block 0.
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        b.add_net("e0", [n[0], n[1]]).unwrap();
        b.add_net("e1", [n[1], n[2], n[3]]).unwrap();
        let e2 = b.add_net("e2", [n[0], n[3]]).unwrap();
        b.add_terminal("t", e2).unwrap();
        let g = b.finish().unwrap();
        let mut state = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let predicted = io_gain(&state, NodeId::from_index(3), 0);
        let before = (state.block_terminals(0) + state.block_terminals(1)) as i32;
        state.move_node(NodeId::from_index(3), 0);
        let after = (state.block_terminals(0) + state.block_terminals(1)) as i32;
        assert_eq!(predicted, before - after);
        state.assert_consistent();
    }

    #[test]
    fn level2_gain_rewards_near_absorption() {
        let g = sample();
        // blocks: {0} vs {1,2,3}. Move node 1 to block 0:
        //   e1 = {1,2,3}: outside block 0 (excluding 1) = {2,3} → 2 pins,
        //   not +1. e0 = {0,1} uncuts at level 1. After check: for net e1,
        //   pins_in(from=1) = 3 = n → not n−1.
        let state = PartitionState::from_assignment(&g, vec![0, 1, 1, 1], 2);
        let locked = vec![false; 4];
        // node 2 → block 0: e1 outside-0 excluding 2 = {1,3} two pins → no +1.
        // e1 pins_in(from=1) = 3 = n → no −1. gain2 = 0.
        assert_eq!(level2_gain(&state, NodeId::from_index(2), 0, &locked), 0);
        // node 3 → block 0: nets e1 (no contribution, as above) and
        // e2 = {0,3}: outside_to(0) = 1 → not 2 → no +1 (it is a direct
        // level-1 gain instead). pins_in(e2, from=1) = 1 = n−1 and the
        // outside pin (node 0) is unlocked → −1.
        assert_eq!(level2_gain(&state, NodeId::from_index(3), 0, &locked), -1);
    }

    #[test]
    fn generic_level_gain_matches_specialized_levels() {
        let g = sample();
        for assignment in [vec![0, 0, 1, 1], vec![0, 1, 0, 1], vec![1, 0, 1, 0]] {
            let state = PartitionState::from_assignment(&g, assignment.clone(), 2);
            for locked_idx in [None, Some(0usize), Some(3usize)] {
                let mut locked = vec![false; 4];
                if let Some(i) = locked_idx {
                    locked[i] = true;
                }
                for node in 0..4usize {
                    if locked_idx == Some(node) {
                        continue;
                    }
                    let node = NodeId::from_index(node);
                    let to = 1 - state.block_of(node);
                    assert_eq!(
                        level_gain(&state, node, to, &locked, 1),
                        level1_gain(&state, node, to),
                        "level 1, node {node:?}, {assignment:?}, locked {locked_idx:?}"
                    );
                    assert_eq!(
                        level_gain(&state, node, to, &locked, 2),
                        level2_gain(&state, node, to, &locked),
                        "level 2, node {node:?}, {assignment:?}, locked {locked_idx:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn third_level_gain_sees_three_away_nets() {
        // Net {0,1,2,3}: moving node 0 to block 1 where nodes 1,2,3 are
        // all in block 0 → three pins outside the target besides 0 is 3,
        // so the positive contribution appears exactly at level 4.
        let mut b = HypergraphBuilder::new();
        let n: Vec<NodeId> = (0..4).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        b.add_net("big", n.clone()).unwrap();
        let g = b.finish().unwrap();
        let state = PartitionState::from_assignment(&g, vec![0, 0, 0, 0], 2);
        let locked = vec![false; 4];
        let node = n[0];
        // level 4 positive (+1) and level 4 negative (pins outside block 0
        // = 0 ≠ 3) → +1; lower levels see only the negative at level 1.
        assert_eq!(level_gain(&state, node, 1, &locked, 4), 1);
        assert_eq!(level_gain(&state, node, 1, &locked, 3), 0);
        assert_eq!(level_gain(&state, node, 1, &locked, 1), -1);
    }

    #[test]
    fn level2_gain_respects_locks() {
        let g = sample();
        let state = PartitionState::from_assignment(&g, vec![0, 1, 1, 1], 2);
        let mut locked = vec![false; 4];
        locked[0] = true; // node 0 locked
                          // the −1 for node 3 → 0 disappears: the outside pin is locked.
        assert_eq!(level2_gain(&state, NodeId::from_index(3), 0, &locked), 0);
    }

    /// Delta updates must agree with recomputing level-1 gains from
    /// scratch for every remaining unlocked cell and direction.
    #[test]
    fn deltas_match_recomputation() {
        let g = sample();
        let mut state = PartitionState::from_assignment(&g, vec![0, 0, 1, 1], 2);
        let active = [0usize, 1];
        let locked = vec![false; 4];
        let moved = NodeId::from_index(1);

        // gains before
        let mut gains = std::collections::HashMap::new();
        for v in g.node_ids() {
            let c = state.block_of(v);
            for &d in &active {
                if d != c {
                    gains.insert((v, c, d), level1_gain(&state, v, d));
                }
            }
        }

        let pre: Vec<(u32, u32)> = g
            .nets(moved)
            .iter()
            .map(|&e| (state.net_pins_in(e, 0), state.net_pins_in(e, 1)))
            .collect();
        state.move_node(moved, 1);

        let mut updated = gains.clone();
        deltas_for_move(&state, moved, 0, 1, &pre, &active, &locked, |d| {
            *updated.get_mut(&(d.cell, d.from, d.to)).unwrap() += d.delta;
        });

        for v in g.node_ids() {
            if v == moved {
                continue;
            }
            let c = state.block_of(v);
            for &d in &active {
                if d != c {
                    assert_eq!(
                        updated[&(v, c, d)],
                        level1_gain(&state, v, d),
                        "cell {v:?} direction {c}->{d}"
                    );
                }
            }
        }
    }
}
