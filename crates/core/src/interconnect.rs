//! Inter-device interconnect analysis.
//!
//! A multi-FPGA partition is only implementable if the board can route
//! the signals between the devices; this module computes the
//! block-to-block connection matrix (how many nets each device pair
//! shares) and the broadcast nets spanning three or more devices — the
//! quantities a board designer reads off a partition before committing
//! to it.

use std::fmt;

use fpart_hypergraph::Hypergraph;

/// Inter-block connectivity of a finished partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterconnectReport {
    /// Number of blocks `k`.
    pub blocks: usize,
    /// Upper-triangular pair matrix: `pairs[i][j - i - 1]` = nets shared
    /// by blocks `i < j` (only those two, or those two among others).
    pair_nets: Vec<Vec<usize>>,
    /// Nets spanning exactly two devices.
    pub two_point_nets: usize,
    /// Nets spanning three or more devices (need multi-point routing).
    pub multi_point_nets: usize,
    /// The widest net's device span.
    pub max_span: usize,
}

impl InterconnectReport {
    /// Computes the report for a `k`-way assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment does not cover the graph or references a
    /// block `≥ k`.
    ///
    /// # Example
    ///
    /// ```
    /// use fpart_core::{partition, FpartConfig, InterconnectReport};
    /// use fpart_device::Device;
    /// use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    ///
    /// # fn main() -> Result<(), fpart_core::PartitionError> {
    /// let circuit = window_circuit(&WindowConfig::new("demo", 200, 16), 1);
    /// let outcome = partition(&circuit, Device::XC3020.constraints(0.9), &FpartConfig::default())?;
    /// let report = InterconnectReport::new(&circuit, &outcome.assignment, outcome.device_count);
    /// assert_eq!(report.two_point_nets + report.multi_point_nets, outcome.cut);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn new(graph: &Hypergraph, assignment: &[u32], k: usize) -> Self {
        assert_eq!(assignment.len(), graph.node_count(), "assignment must cover the graph");
        assert!(assignment.iter().all(|&b| (b as usize) < k), "assignment references a block >= k");
        let mut pair_nets: Vec<Vec<usize>> = (0..k).map(|i| vec![0usize; k - i - 1]).collect();
        let mut two_point = 0usize;
        let mut multi_point = 0usize;
        let mut max_span = 0usize;
        let mut touched: Vec<u32> = Vec::new();
        for net in graph.net_ids() {
            touched.clear();
            for &pin in graph.pins(net) {
                let b = assignment[pin.index()];
                if !touched.contains(&b) {
                    touched.push(b);
                }
            }
            let span = touched.len();
            if span < 2 {
                continue;
            }
            max_span = max_span.max(span);
            if span == 2 {
                two_point += 1;
            } else {
                multi_point += 1;
            }
            touched.sort_unstable();
            for i in 0..touched.len() {
                for j in (i + 1)..touched.len() {
                    let (a, b) = (touched[i] as usize, touched[j] as usize);
                    pair_nets[a][b - a - 1] += 1;
                }
            }
        }
        InterconnectReport {
            blocks: k,
            pair_nets,
            two_point_nets: two_point,
            multi_point_nets: multi_point,
            max_span,
        }
    }

    /// Nets shared by the (unordered) device pair `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of range.
    #[must_use]
    pub fn between(&self, a: usize, b: usize) -> usize {
        assert_ne!(a, b, "a device pair needs two distinct devices");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        self.pair_nets[lo][hi - lo - 1]
    }

    /// The device pair sharing the most nets (the board's widest cable),
    /// or `None` for partitions with fewer than two blocks or no cut.
    #[must_use]
    pub fn widest_pair(&self) -> Option<(usize, usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None;
        for i in 0..self.blocks {
            for j in (i + 1)..self.blocks {
                let n = self.between(i, j);
                if n > 0 && best.is_none_or(|(_, _, bn)| n > bn) {
                    best = Some((i, j, n));
                }
            }
        }
        best
    }

    /// Total pairwise connections (a net spanning `s` devices counts
    /// `s·(s−1)/2` times — the number of point-to-point cables a naive
    /// board would need).
    #[must_use]
    pub fn total_pairwise(&self) -> usize {
        self.pair_nets.iter().map(|row| row.iter().sum::<usize>()).sum()
    }
}

impl fmt::Display for InterconnectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} blocks; {} two-point nets, {} multi-point nets (max span {})",
            self.blocks, self.two_point_nets, self.multi_point_nets, self.max_span
        )?;
        match self.widest_pair() {
            Some((a, b, n)) => write!(f, "widest device pair: {a} <-> {b} ({n} nets)"),
            None => write!(f, "no inter-device nets"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::HypergraphBuilder;

    fn three_block_sample() -> (Hypergraph, Vec<u32>) {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..6).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        b.add_net("ab", [n[0], n[2]]).unwrap(); // blocks 0-1
        b.add_net("ab2", [n[1], n[3]]).unwrap(); // blocks 0-1
        b.add_net("bc", [n[2], n[4]]).unwrap(); // blocks 1-2
        b.add_net("abc", [n[0], n[3], n[5]]).unwrap(); // all three
        b.add_net("internal", [n[0], n[1]]).unwrap(); // inside 0
        let g = b.finish().unwrap();
        (g, vec![0, 0, 1, 1, 2, 2])
    }

    #[test]
    fn counts_pairs_and_spans() {
        let (g, assignment) = three_block_sample();
        let r = InterconnectReport::new(&g, &assignment, 3);
        assert_eq!(r.two_point_nets, 3);
        assert_eq!(r.multi_point_nets, 1);
        assert_eq!(r.max_span, 3);
        assert_eq!(r.between(0, 1), 3); // ab, ab2, abc
        assert_eq!(r.between(1, 2), 2); // bc, abc
        assert_eq!(r.between(0, 2), 1); // abc
        assert_eq!(r.between(2, 0), 1); // symmetric
        assert_eq!(r.total_pairwise(), 6);
        assert_eq!(r.widest_pair(), Some((0, 1, 3)));
    }

    #[test]
    fn display_mentions_widest_pair() {
        let (g, assignment) = three_block_sample();
        let r = InterconnectReport::new(&g, &assignment, 3);
        let text = r.to_string();
        assert!(text.contains("0 <-> 1"));
        assert!(text.contains("multi-point"));
    }

    #[test]
    fn single_block_has_no_interconnect() {
        let (g, _) = three_block_sample();
        let r = InterconnectReport::new(&g, &[0; 6], 1);
        assert_eq!(r.two_point_nets, 0);
        assert_eq!(r.total_pairwise(), 0);
        assert_eq!(r.widest_pair(), None);
    }

    #[test]
    fn matches_partition_cut() {
        use fpart_hypergraph::gen::{window_circuit, WindowConfig};
        let g = window_circuit(&WindowConfig::new("w", 200, 16), 9);
        let constraints = fpart_device::Device::XC3020.constraints(0.9);
        let outcome =
            crate::partition(&g, constraints, &crate::FpartConfig::default()).expect("runs");
        let r = InterconnectReport::new(&g, &outcome.assignment, outcome.device_count);
        assert_eq!(r.two_point_nets + r.multi_point_nets, outcome.cut);
    }
}
