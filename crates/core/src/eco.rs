//! Incremental (ECO) repartitioning: repair an existing partition after
//! a netlist edit instead of rebuilding it from scratch.
//!
//! Real FPGA flows are iterative — multi-FPGA emulation systems
//! repartition near-identical designs on every design spin. The repair
//! driver here exploits that: the surviving part of the previous
//! assignment is carried over the old→new node mapping produced by
//! [`fpart_hypergraph::apply_script`], new and orphaned cells are placed
//! constructively into the most-connected block with free capacity, and
//! only the *dirty* blocks — the ones an edit actually touched — are
//! repaired with the boundary-only FM machinery
//! ([`crate::refine::refine_boundary_dirty_metered`]) under the same
//! infeasibility-distance cost as every other entry point.
//!
//! Two safety valves keep repairs honest:
//!
//! * a **churn threshold** — when the edit touches more than
//!   [`EcoConfig::churn_threshold`] of the design, local repair is the
//!   wrong tool and the driver falls back to a full multilevel
//!   repartition ([`Counter::EcoFallbacks`]);
//! * **verification** — every repaired assignment is re-verified from
//!   first principles; an infeasible repair (outside of a budget stop,
//!   where degradation is the contract) also falls back.
//!
//! Budgets compose exactly like the other drivers: one
//! [`BudgetTracker`] spans carry-over, placement, and repair; an expired
//! deadline skips repair but still returns a full-coverage assignment.

use std::time::Instant;

use fpart_device::{lower_bound, DeviceConstraints};
use fpart_hypergraph::{apply_script, EditApplied, EditScript, Hypergraph, NodeId};

use crate::budget::BudgetTracker;
use crate::config::FpartConfig;
use crate::cost::CostEvaluator;
use crate::driver::{restart_config, search_restarts, PartitionError, PartitionOutcome};
use crate::multilevel::{partition_multilevel_observed, MultilevelConfig};
use crate::obs::{Counter, Metrics, Observer};
use crate::refine::{refine_boundary_dirty_metered, RefineConfig};
use crate::state::PartitionState;
use crate::trace::Trace;
use crate::verify::verify_assignment;

/// Options of the ECO repair driver.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoConfig {
    /// Fraction of the edited design's cells an edit may touch (cells
    /// placed plus cells removed, over the edited node count) before
    /// local repair gives way to a full multilevel repartition.
    pub churn_threshold: f64,
    /// Maximum dirty-block repair rounds (see [`RefineConfig::rounds`]).
    pub refine_rounds: usize,
    /// Block pairs repaired per round, before the dirty filter.
    pub pairs_per_round: usize,
    /// The full-repartition engine used when the churn threshold trips
    /// or a repair does not verify. Its `threads` field also sizes the
    /// dirty-block repair's boundary pair-job workers, so one knob
    /// covers both paths of the ECO flow.
    pub multilevel: MultilevelConfig,
}

impl Default for EcoConfig {
    fn default() -> Self {
        EcoConfig {
            churn_threshold: 0.15,
            refine_rounds: 4,
            pairs_per_round: 16,
            multilevel: MultilevelConfig::default(),
        }
    }
}

impl EcoConfig {
    /// Panics on nonsensical parameters, mirroring
    /// [`FpartConfig::validate`]'s contract.
    ///
    /// # Panics
    ///
    /// Panics when `churn_threshold` is not finite and in `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.churn_threshold.is_finite() && (0.0..=1.0).contains(&self.churn_threshold),
            "churn_threshold must be a finite fraction in [0, 1]"
        );
        self.multilevel.validate();
    }
}

/// Result of one ECO repair.
#[derive(Debug, Clone)]
pub struct EcoReport {
    /// The repaired (or fallback-repartitioned) outcome on the edited
    /// graph. Always verifiable; always covers every node.
    pub outcome: PartitionOutcome,
    /// `true` when the incremental repair path produced the outcome;
    /// `false` when the driver fell back to full repartitioning.
    pub repaired: bool,
    /// Cells whose assignment survived the edit unchanged.
    pub carried: usize,
    /// Cells placed constructively (new nodes, or nodes of the previous
    /// assignment the mapping orphaned).
    pub placed: usize,
    /// Cells of the previous assignment the edit removed.
    pub removed: usize,
    /// Blocks marked dirty and eligible for repair.
    pub dirty_blocks: usize,
    /// The measured churn ratio the threshold was compared against.
    pub churn: f64,
}

/// An error from the combined apply-then-repair entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcoError {
    /// The edit script could not be applied to the netlist.
    Apply(fpart_hypergraph::ApplyEditError),
    /// The repair (or its fallback) failed.
    Partition(PartitionError),
}

impl std::fmt::Display for EcoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcoError::Apply(e) => write!(f, "edit script failed: {e}"),
            EcoError::Partition(e) => write!(f, "repair failed: {e}"),
        }
    }
}

impl std::error::Error for EcoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EcoError::Apply(e) => Some(e),
            EcoError::Partition(e) => Some(e),
        }
    }
}

impl From<fpart_hypergraph::ApplyEditError> for EcoError {
    fn from(e: fpart_hypergraph::ApplyEditError) -> Self {
        EcoError::Apply(e)
    }
}

impl From<PartitionError> for EcoError {
    fn from(e: PartitionError) -> Self {
        EcoError::Partition(e)
    }
}

/// Result of [`repartition_edited`]: the edit application plus the
/// repair report on the edited graph.
#[derive(Debug, Clone)]
pub struct EcoRun {
    /// The edited graph and old→new node mapping.
    pub edited: EditApplied,
    /// The repair result (assignments index the edited graph).
    pub report: EcoReport,
}

/// Repairs `previous` — a `k`-way assignment of the graph the edit
/// script was derived from — into a partition of the edited `graph`.
///
/// `node_map[old]` gives each old node's id in `graph` (`None` when the
/// edit removed it), exactly as produced by
/// [`fpart_hypergraph::apply_script`]. The driver:
///
/// 1. carries surviving assignments over the mapping;
/// 2. measures churn (placed + removed cells over the edited node
///    count) and falls back to full multilevel repartitioning above
///    [`EcoConfig::churn_threshold`];
/// 3. places unassigned cells into the most-connected block with free
///    size capacity (ties to the lowest block; a cell with no connected
///    candidate goes to the emptiest fitting block, or opens a new one);
/// 4. marks dirty blocks — blocks that gained or lost cells, plus any
///    block the edit left infeasible — and repairs only those with
///    boundary-only FM under the infeasibility-distance cost;
/// 5. verifies the result, falling back to full repartitioning when a
///    completed repair does not verify (a budget stop instead returns
///    the degraded-but-valid assignment, like every other driver).
///
/// # Errors
///
/// [`PartitionError::InvalidConfig`] when `previous` and `node_map`
/// disagree in length, [`PartitionError::OversizedNode`] when a node
/// cannot fit any block, and any error of the multilevel fallback.
pub fn repartition_eco(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    eco: &EcoConfig,
    previous: &[u32],
    node_map: &[Option<NodeId>],
) -> Result<EcoReport, PartitionError> {
    let mut obs = Observer::none();
    repartition_eco_observed(graph, constraints, config, eco, previous, node_map, &mut obs)
}

/// [`repartition_eco`] with metrics recorded into `obs` — dirty-block
/// counts ([`Counter::EcoDirtyBlocks`]), fallbacks
/// ([`Counter::EcoFallbacks`]), repair timing under
/// [`crate::ImproveKind::Boundary`], and everything the fallback engine
/// records when it runs.
///
/// # Errors
///
/// See [`repartition_eco`].
#[allow(clippy::too_many_lines)]
pub fn repartition_eco_observed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    eco: &EcoConfig,
    previous: &[u32],
    node_map: &[Option<NodeId>],
    obs: &mut Observer<'_>,
) -> Result<EcoReport, PartitionError> {
    config.validate();
    eco.validate();
    let start = Instant::now();

    if previous.len() != node_map.len() {
        return Err(PartitionError::InvalidConfig {
            what: "previous assignment and node map must have the same length",
        });
    }
    if graph.node_count() == 0 {
        let outcome =
            partition_multilevel_observed(graph, constraints, config, &eco.multilevel, obs)?;
        return Ok(EcoReport {
            outcome,
            repaired: true,
            carried: 0,
            placed: 0,
            removed: node_map.iter().filter(|m| m.is_none()).count(),
            dirty_blocks: 0,
            churn: 0.0,
        });
    }
    for v in graph.node_ids() {
        let size = graph.node_size(v);
        if u64::from(size) > constraints.s_max {
            return Err(PartitionError::OversizedNode { node: v, size, s_max: constraints.s_max });
        }
    }

    // Carry surviving assignments over the mapping.
    let n = graph.node_count();
    let mut carried_blocks: Vec<Option<u32>> = vec![None; n];
    let mut removed = 0usize;
    for (old, mapped) in node_map.iter().enumerate() {
        match mapped {
            Some(new) => carried_blocks[new.index()] = Some(previous[old]),
            None => removed += 1,
        }
    }
    let carried = carried_blocks.iter().filter(|b| b.is_some()).count();
    let placed = n - carried;
    #[allow(clippy::cast_precision_loss)]
    let churn = (placed + removed) as f64 / n as f64;

    // Too much churn: local repair is the wrong tool.
    if churn > eco.churn_threshold {
        obs.metrics.bump(Counter::EcoFallbacks);
        let outcome =
            partition_multilevel_observed(graph, constraints, config, &eco.multilevel, obs)?;
        return Ok(EcoReport {
            outcome,
            repaired: false,
            carried,
            placed,
            removed,
            dirty_blocks: 0,
            churn,
        });
    }

    // One budget for carry-over, placement, and repair (a direct call
    // counts as restart 0 for fault-plan targeting, like the drivers).
    let tracker = BudgetTracker::new(
        &config.budget,
        config.fault_plan.as_ref().and_then(|plan| plan.for_restart(0)),
    );

    // Blocks of the previous partition stay addressable even when the
    // edit emptied them; new blocks open past them if placement needs to.
    let place_started = obs.metrics.start();
    let mut k = previous
        .iter()
        .enumerate()
        .filter(|&(old, _)| node_map[old].is_some())
        .map(|(_, &b)| b as usize + 1)
        .max()
        .unwrap_or(0)
        .max(1);

    let mut dirty = vec![false; k];
    // Blocks that lost cells are dirty: the edit changed their boundary.
    for (old, mapped) in node_map.iter().enumerate() {
        if mapped.is_none() {
            let b = previous[old] as usize;
            if b < k {
                dirty[b] = true;
            }
        }
    }

    // Constructive placement: most-connected block with free size
    // capacity, in node-id order (deterministic).
    let mut block_sizes = vec![0u64; k];
    for v in graph.node_ids() {
        if let Some(b) = carried_blocks[v.index()] {
            block_sizes[b as usize] += u64::from(graph.node_size(v));
        }
    }
    let mut connectivity = vec![0u64; k];
    for v in graph.node_ids() {
        if carried_blocks[v.index()].is_some() {
            continue;
        }
        let size = u64::from(graph.node_size(v));
        connectivity.fill(0);
        for &e in graph.nets(v) {
            for &u in graph.pins(e) {
                if u == v {
                    continue;
                }
                if let Some(b) = carried_blocks[u.index()] {
                    connectivity[b as usize] += 1;
                }
            }
        }
        let best_connected = (0..k)
            .filter(|&b| connectivity[b] > 0 && block_sizes[b] + size <= constraints.s_max)
            .max_by_key(|&b| (connectivity[b], std::cmp::Reverse(b)));
        let target = best_connected.or_else(|| {
            // No connected block fits: the emptiest block that does.
            (0..k)
                .filter(|&b| block_sizes[b] + size <= constraints.s_max)
                .min_by_key(|&b| (block_sizes[b], b))
        });
        let b = target.unwrap_or_else(|| {
            // Nothing fits: open a fresh block.
            block_sizes.push(0);
            connectivity.push(0);
            dirty.push(false);
            k += 1;
            k - 1
        });
        carried_blocks[v.index()] = Some(b as u32);
        block_sizes[b] += size;
        dirty[b] = true;
    }

    let assignment: Vec<u32> =
        carried_blocks.into_iter().map(|b| b.expect("placement covers every node")).collect();
    let mut state = PartitionState::from_assignment(graph, assignment, k);

    // Any block the edit left infeasible needs repair too (resizes and
    // terminal shifts change usage without moving a cell).
    for (b, slot) in dirty.iter_mut().enumerate() {
        let usage = state.block_usage(b);
        if usage.size > constraints.s_max || usage.terminals > constraints.t_max {
            *slot = true;
        }
    }
    let dirty_blocks = dirty.iter().filter(|&&d| d).count();
    obs.metrics.add(Counter::EcoDirtyBlocks, dirty_blocks as u64);
    if let Some(started) = place_started {
        obs.metrics.record_span(
            crate::obs::SpanKind::EcoPlace,
            0,
            started.elapsed(),
            crate::obs::SpanStats {
                nodes: n as u64,
                moves: placed as u64,
                boundary: dirty_blocks as u64,
                ..crate::obs::SpanStats::default()
            },
        );
    }

    let m = lower_bound(graph, constraints);
    let evaluator = CostEvaluator::new(constraints, config, m, graph.terminal_count());
    // The repair shares the multilevel worker knob: dirty-block pair
    // jobs fan out exactly like an uncoarsening level's (and the full
    // fallback engine below inherits the same count).
    let refine = RefineConfig {
        rounds: eco.refine_rounds,
        pairs_per_round: eco.pairs_per_round,
        workers: eco.multilevel.threads.max(1),
    };

    let mut improve_calls = 0usize;
    let mut total_moves = 0usize;
    if !tracker.check() && dirty_blocks > 0 && k >= 2 {
        obs.metrics.span_open(crate::obs::SpanKind::EcoRepair, 0);
        let stats = refine_boundary_dirty_metered(
            &mut state,
            &evaluator,
            config,
            &refine,
            Some(&tracker),
            &mut obs.metrics,
            &dirty,
        );
        improve_calls = stats.calls;
        total_moves = stats.moves;
        obs.metrics.span_close(crate::obs::SpanStats {
            nodes: n as u64,
            boundary: stats.boundary as u64,
            moves: stats.moves as u64,
            ..crate::obs::SpanStats::default()
        });
        if let Some(elapsed) = obs.heartbeat.due() {
            let snapshot = tracker.remaining();
            let passes = obs.metrics.get(Counter::Passes);
            let cut = state.cut_count();
            obs.emit(|| crate::trace::TraceEvent::Progress {
                phase: crate::obs::SpanKind::EcoRepair,
                level: 0,
                passes,
                moves: total_moves as u64,
                cut: Some(cut),
                elapsed_ms: elapsed.as_millis() as u64,
                deadline_remaining_ms: snapshot.deadline_remaining.map(|d| d.as_millis() as u64),
                passes_remaining: snapshot.passes_remaining,
            });
        }
    }
    if tracker.stopped() {
        obs.metrics.bump(Counter::BudgetStops);
    }
    obs.metrics.add(Counter::FaultsInjected, tracker.faults_injected());

    // Every repair is verified from first principles; a completed repair
    // that does not verify falls back to the full engine. Budget stops
    // return the degraded-but-valid assignment instead — degradation is
    // the budget contract, and the fallback would blow the deadline.
    let verification = verify_assignment(graph, state.assignment(), k, constraints);
    if !verification.is_feasible() && !tracker.stopped() {
        obs.metrics.bump(Counter::EcoFallbacks);
        let outcome =
            partition_multilevel_observed(graph, constraints, config, &eco.multilevel, obs)?;
        return Ok(EcoReport {
            outcome,
            repaired: false,
            carried,
            placed,
            removed,
            dirty_blocks,
            churn,
        });
    }

    let outcome = crate::driver::assemble_outcome(
        graph,
        &state,
        constraints,
        m,
        usize::from(improve_calls > 0),
        improve_calls,
        total_moves,
        start.elapsed(),
        Trace::disabled(),
        obs.metrics.clone(),
        tracker.completion(),
    );
    Ok(EcoReport { outcome, repaired: true, carried, placed, removed, dirty_blocks, churn })
}

/// Applies `script` to `graph` and repairs `previous` onto the edited
/// netlist — the end-to-end ECO entry point the CLI uses.
///
/// # Errors
///
/// [`EcoError::Apply`] when the script does not apply;
/// [`EcoError::Partition`] when the repair (or its fallback) fails.
pub fn repartition_edited(
    graph: &Hypergraph,
    script: &EditScript,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    eco: &EcoConfig,
    previous: &[u32],
) -> Result<EcoRun, EcoError> {
    let mut obs = Observer::none();
    repartition_edited_observed(graph, script, constraints, config, eco, previous, &mut obs)
}

/// [`repartition_edited`] with metrics: the applied edit count lands in
/// [`Counter::EcoEditsApplied`] before the repair runs, so it is part of
/// the outcome's metrics snapshot.
///
/// # Errors
///
/// See [`repartition_edited`].
pub fn repartition_edited_observed(
    graph: &Hypergraph,
    script: &EditScript,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    eco: &EcoConfig,
    previous: &[u32],
    obs: &mut Observer<'_>,
) -> Result<EcoRun, EcoError> {
    let apply_started = obs.metrics.start();
    let edited = apply_script(graph, script)?;
    obs.metrics.add(Counter::EcoEditsApplied, script.len() as u64);
    if let Some(started) = apply_started {
        obs.metrics.record_span(
            crate::obs::SpanKind::EcoApply,
            0,
            started.elapsed(),
            crate::obs::SpanStats {
                nodes: edited.graph.node_count() as u64,
                nets: edited.graph.net_count() as u64,
                moves: script.len() as u64,
                ..crate::obs::SpanStats::default()
            },
        );
    }
    let report = repartition_eco_observed(
        &edited.graph,
        constraints,
        config,
        eco,
        previous,
        &edited.node_map,
        obs,
    )?;
    Ok(EcoRun { edited, report })
}

/// Runs [`repartition_eco`] `restarts` times with consecutive seed
/// offsets (diversifying both the driver seed and the fallback engine's
/// matching seed), optionally across `threads` scoped worker threads,
/// and returns the best report under the same restart-order reduction as
/// [`crate::partition_restarts`] — **bit-identical for every thread
/// count**. Restarts are panic-isolated exactly like the flat search.
///
/// # Errors
///
/// [`PartitionError::InvalidConfig`] when `restarts` or `threads` is
/// zero; otherwise the contract of [`repartition_eco`].
#[allow(clippy::too_many_arguments)]
pub fn repartition_eco_restarts(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    eco: &EcoConfig,
    previous: &[u32],
    node_map: &[Option<NodeId>],
    restarts: usize,
    threads: usize,
) -> Result<PartitionOutcome, PartitionError> {
    let (outer, inner) = crate::multilevel::split_thread_budget(threads, restarts);
    search_restarts(restarts, if threads == 0 { 0 } else { outer }, &|i| {
        let cfg = restart_config(config, i);
        let ecoc = EcoConfig {
            multilevel: MultilevelConfig {
                seed: eco.multilevel.seed.wrapping_add(i as u64),
                threads: inner,
                ..eco.multilevel.clone()
            },
            ..eco.clone()
        };
        repartition_eco(graph, constraints, &cfg, &ecoc, previous, node_map)
            .map(|report| report.outcome)
    })
}

/// [`repartition_eco_restarts`] with per-restart metrics recording,
/// mirroring [`crate::partition_restarts_observed`]. Each restart's
/// metrics include its own eco counters; the aggregate sums them.
///
/// # Errors
///
/// Same contract as [`repartition_eco_restarts`].
#[allow(clippy::too_many_arguments)]
pub fn repartition_eco_restarts_observed(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    eco: &EcoConfig,
    previous: &[u32],
    node_map: &[Option<NodeId>],
    restarts: usize,
    threads: usize,
) -> Result<crate::driver::RestartsReport, PartitionError> {
    let (outer, inner) = crate::multilevel::split_thread_budget(threads, restarts);
    crate::driver::search_restarts_observed(restarts, if threads == 0 { 0 } else { outer }, &|i| {
        let cfg = restart_config(config, i);
        let ecoc = EcoConfig {
            multilevel: MultilevelConfig {
                seed: eco.multilevel.seed.wrapping_add(i as u64),
                threads: inner,
                ..eco.multilevel.clone()
            },
            ..eco.clone()
        };
        let mut obs = Observer::new(Metrics::enabled(), None);
        obs.metrics.set_span_lane(i as u32);
        obs.metrics.span_open(crate::obs::SpanKind::Restart, 0);
        let result =
            repartition_eco_observed(graph, constraints, &cfg, &ecoc, previous, node_map, &mut obs)
                .map(|report| report.outcome);
        let mut metrics = obs.metrics;
        metrics.bump(Counter::Runs);
        let span_stats = match &result {
            Ok(outcome) => crate::obs::SpanStats {
                nodes: graph.node_count() as u64,
                nets: graph.net_count() as u64,
                moves: outcome.total_moves as u64,
                ..crate::obs::SpanStats::default()
            },
            Err(_) => crate::obs::SpanStats::default(),
        };
        metrics.span_close(span_stats);
        (result, metrics)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::RunBudget;
    use crate::multilevel::partition_multilevel;
    use fpart_device::Device;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};
    use fpart_hypergraph::EditOp;
    use std::time::Duration;

    fn small_edit(graph: &Hypergraph) -> EditScript {
        // Remove two cells, add one with a net into the survivors.
        let a = graph.node_name(NodeId::from_index(3)).to_owned();
        let b = graph.node_name(NodeId::from_index(17)).to_owned();
        let keep = graph.node_name(NodeId::from_index(40)).to_owned();
        EditScript::new(vec![
            EditOp::RemoveNode { name: a },
            EditOp::RemoveNode { name: b },
            EditOp::AddNode { name: "eco_x".into(), size: 2 },
            EditOp::AddNet { name: "eco_n".into(), pins: vec!["eco_x".into(), keep] },
        ])
    }

    #[test]
    fn repair_after_small_edit_is_verifiable_and_incremental() {
        let g = window_circuit(&WindowConfig::new("w", 400, 30), 3);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let prev = partition_multilevel(&g, constraints, &config, &MultilevelConfig::default())
            .expect("baseline");
        let run = repartition_edited(
            &g,
            &small_edit(&g),
            constraints,
            &config,
            &EcoConfig::default(),
            &prev.assignment,
        )
        .expect("repairs");
        assert!(run.report.repaired, "1% churn must stay on the repair path");
        assert!(run.report.churn < 0.05, "churn {}", run.report.churn);
        assert!(run.report.placed >= 1);
        assert!(run.report.removed >= 2);
        assert!(run.report.dirty_blocks >= 1);
        let out = &run.report.outcome;
        assert!(out.feasible, "blocks: {:?}", out.blocks);
        assert_eq!(out.assignment.len(), run.edited.graph.node_count());
        assert!(verify_assignment(
            &run.edited.graph,
            &out.assignment,
            out.device_count,
            constraints
        )
        .is_feasible());
        // Most cells keep their block: repair is local by construction.
        let mut kept = 0usize;
        for (old, mapped) in run.edited.node_map.iter().enumerate() {
            if let Some(new) = mapped {
                // assemble_outcome compacts block ids, so compare
                // co-membership instead of raw ids: count cells whose
                // old block peer-set is preserved. Cheap proxy: the
                // number of moved cells is bounded by the repair moves.
                let _ = (old, new);
                kept += 1;
            }
        }
        assert_eq!(kept, run.report.carried);
    }

    #[test]
    fn high_churn_falls_back_to_full_repartitioning() {
        let g = window_circuit(&WindowConfig::new("w", 200, 20), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let prev = partition_multilevel(&g, constraints, &config, &MultilevelConfig::default())
            .expect("baseline");
        // Remove a third of the design — way past any sane threshold.
        let ops: Vec<EditOp> = g
            .node_ids()
            .take(g.node_count() / 3)
            .map(|v| EditOp::RemoveNode { name: g.node_name(v).to_owned() })
            .collect();
        let mut obs = Observer::new(Metrics::enabled(), None);
        let run = repartition_edited_observed(
            &g,
            &EditScript::new(ops),
            constraints,
            &config,
            &EcoConfig::default(),
            &prev.assignment,
            &mut obs,
        )
        .expect("falls back");
        assert!(!run.report.repaired);
        assert!(run.report.churn > 0.15);
        assert!(run.report.outcome.feasible);
        assert_eq!(obs.metrics.get(Counter::EcoFallbacks), 1);
        assert!(obs.metrics.get(Counter::EcoEditsApplied) > 0);
    }

    #[test]
    fn mismatched_map_length_is_a_typed_error() {
        let g = window_circuit(&WindowConfig::new("w", 50, 8), 1);
        let err = repartition_eco(
            &g,
            Device::XC3020.constraints(0.9),
            &FpartConfig::default(),
            &EcoConfig::default(),
            &[0, 0, 0],
            &[None],
        )
        .unwrap_err();
        assert!(matches!(err, PartitionError::InvalidConfig { .. }));
    }

    #[test]
    fn expired_deadline_skips_repair_but_covers_every_node() {
        let g = window_circuit(&WindowConfig::new("w", 400, 30), 3);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let prev = partition_multilevel(&g, constraints, &config, &MultilevelConfig::default())
            .expect("baseline");
        let timed = FpartConfig {
            budget: RunBudget { deadline: Some(Duration::ZERO), ..RunBudget::default() },
            ..config.clone()
        };
        let run = repartition_edited(
            &g,
            &small_edit(&g),
            constraints,
            &timed,
            &EcoConfig::default(),
            &prev.assignment,
        )
        .expect("degrades, does not error");
        let out = &run.report.outcome;
        assert_eq!(out.assignment.len(), run.edited.graph.node_count());
        let v =
            verify_assignment(&run.edited.graph, &out.assignment, out.device_count, constraints);
        assert!(
            v.violations.iter().all(|x| matches!(
                x,
                crate::verify::Violation::OverSize { .. }
                    | crate::verify::Violation::OverTerminals { .. }
            )),
            "violations: {:?}",
            v.violations
        );
    }

    #[test]
    fn eco_restarts_are_thread_count_invariant() {
        let g = window_circuit(&WindowConfig::new("w", 300, 24), 5);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let prev = partition_multilevel(&g, constraints, &config, &MultilevelConfig::default())
            .expect("baseline");
        let script = small_edit(&g);
        let edited = apply_script(&g, &script).expect("applies");
        let sequential = repartition_eco_restarts(
            &edited.graph,
            constraints,
            &config,
            &EcoConfig::default(),
            &prev.assignment,
            &edited.node_map,
            3,
            1,
        )
        .unwrap();
        for threads in [2, 4] {
            let parallel = repartition_eco_restarts(
                &edited.graph,
                constraints,
                &config,
                &EcoConfig::default(),
                &prev.assignment,
                &edited.node_map,
                3,
                threads,
            )
            .unwrap();
            assert_eq!(sequential.assignment, parallel.assignment, "threads={threads}");
            assert_eq!(sequential.cut, parallel.cut);
        }
    }

    #[test]
    fn empty_edit_script_reports_zero_churn() {
        let g = window_circuit(&WindowConfig::new("w", 120, 12), 7);
        let constraints = Device::XC3020.constraints(0.9);
        let config = FpartConfig::default();
        let prev = partition_multilevel(&g, constraints, &config, &MultilevelConfig::default())
            .expect("baseline");
        let run = repartition_edited(
            &g,
            &EditScript::default(),
            constraints,
            &config,
            &EcoConfig::default(),
            &prev.assignment,
        )
        .expect("repairs");
        assert!(run.report.repaired);
        assert_eq!(run.report.placed, 0);
        assert_eq!(run.report.removed, 0);
        assert!((run.report.churn - 0.0).abs() < f64::EPSILON);
        assert!(run.report.outcome.feasible);
    }
}
