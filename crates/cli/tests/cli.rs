//! End-to-end tests of the `fpart` binary.

use std::path::PathBuf;
use std::process::Command;

fn fpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpart"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpart_cli_test_{tag}"));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_prints_usage() {
    let out = fpart().arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("partition"));
}

#[test]
fn no_command_fails_with_usage() {
    let out = fpart().output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn devices_lists_catalog() {
    let out = fpart().arg("devices").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("XC3020"));
    assert!(text.contains("XC2064"));
}

#[test]
fn devices_rejects_arguments() {
    let out = fpart().args(["devices", "XC3020"]).output().expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("takes no arguments"), "{err}");
    assert!(err.contains("XC3020"), "{err}");

    let out = fpart().args(["devices", "--bogus"]).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--bogus"));
}

#[test]
fn gen_stats_partition_convert_pipeline() {
    let dir = temp_dir("pipeline");
    let netlist = dir.join("circuit.fhg");
    let hgr = dir.join("circuit.hgr");
    let assignment = dir.join("assignment.txt");

    // gen
    let out = fpart()
        .args(["gen", "rent", "--nodes", "200", "--terminals", "24", "--seed", "7", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // stats
    let out = fpart().arg("stats").arg(&netlist).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes:"), "{text}");
    assert!(text.contains("200"));

    // partition with a named device
    let out = fpart()
        .args(["partition"])
        .arg(&netlist)
        .args(["--device", "XC3020", "--output"])
        .arg(&assignment)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("devices"), "{text}");
    assert!(text.contains("feasible: true"), "{text}");
    let written = std::fs::read_to_string(&assignment).expect("assignment file");
    assert_eq!(written.lines().count(), 200);

    // convert to hMETIS
    let out = fpart().arg("convert").arg(&netlist).arg(&hgr).output().expect("runs");
    assert!(out.status.success());
    let hgr_text = std::fs::read_to_string(&hgr).expect("hgr file");
    assert!(hgr_text.lines().any(|l| l.split_whitespace().count() >= 2));
}

#[test]
fn partition_with_custom_device_and_methods() {
    let dir = temp_dir("methods");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "clustered", "--clusters", "3", "--cluster-size", "15", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    for method in ["fpart", "kway", "flow", "naive", "multilevel", "direct"] {
        let out = fpart()
            .arg("partition")
            .arg(&netlist)
            .args(["--s-max", "20", "--t-max", "100", "--method", method])
            .output()
            .expect("runs");
        assert!(out.status.success(), "{method}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("devices"));
    }
}

/// `--trace` output must follow the documented, diffable column order
/// (stable snake_case improve-kind names, `SolutionKey` Display fields)
/// and be byte-identical across runs.
#[test]
fn trace_output_is_stable_and_diffable() {
    let dir = temp_dir("trace");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "rent", "--nodes", "200", "--terminals", "24", "--seed", "3", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    let run = || {
        let out = fpart()
            .arg("partition")
            .arg(&netlist)
            .args(["--device", "XC3020", "--trace"])
            .output()
            .expect("runs");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    let first = run();
    assert_eq!(first, run(), "--trace output must be reproducible");

    assert!(first.contains("iteration 1: remainder S="), "{first}");
    assert!(first.contains("  bipartition "), "{first}");
    assert!(first.contains("  solution "), "{first}");
    // The documented improve column order: snake_case kind, block count,
    // initial -> final key, then passes/moves/restarts.
    let improve = first
        .lines()
        .find(|l| l.trim_start().starts_with("improve "))
        .unwrap_or_else(|| panic!("no improve line in:\n{first}"));
    assert!(improve.contains("improve last_pair blocks=2: f="), "{improve}");
    assert!(improve.contains(" -> f="), "{improve}");
    for column in [" d=", " tsum=", " ext=", " cut=", " passes=", " moves=", " restarts="] {
        assert!(improve.contains(column), "missing `{column}` in {improve}");
    }
}

/// Extracts every integer value of `"<key>": <n>` in a JSON text, in
/// order of appearance. Span records carry their own per-span counter
/// snapshots which would shadow the registry totals, so `"spans": [...]`
/// arrays are skipped (span records nest no arrays, so the first `]`
/// closes one).
fn scrape_counter(json: &str, key: &str) -> Vec<u64> {
    let mut stripped = String::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"spans\": [") {
        stripped.push_str(&rest[..at]);
        let close = rest[at..].find(']').expect("span array closes");
        rest = &rest[at + close + 1..];
    }
    stripped.push_str(rest);
    let needle = format!("\"{key}\": ");
    stripped
        .match_indices(&needle)
        .map(|(at, _)| {
            let digits: String =
                stripped[at + needle.len()..].chars().take_while(char::is_ascii_digit).collect();
            digits.parse().expect("integer counter value")
        })
        .collect()
}

/// `--metrics` totals must equal the per-restart sums, and `--trace-json`
/// must emit one parseable JSON object per line.
#[test]
fn metrics_and_trace_json_outputs() {
    let dir = temp_dir("metrics");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "rent", "--nodes", "220", "--terminals", "24", "--seed", "9", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    // Multi-restart metrics: totals aggregate the per-restart registries.
    let metrics_file = dir.join("metrics.json");
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--restarts", "3", "--threads", "2", "--metrics"])
        .arg(&metrics_file)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&metrics_file).expect("metrics file");
    assert!(
        json.contains(&format!("\"schema_version\": {}", fpart_core::SCHEMA_VERSION)),
        "{json}"
    );
    assert!(json.contains("\"restarts\": 3"), "{json}");
    assert!(json.contains("\"completion\": \"complete\""), "{json}");
    assert!(json.contains("\"failed_restarts\": []"), "{json}");
    assert!(json.contains("\"per_restart\": ["), "{json}");
    assert!(json.contains("\"quality\": {"), "{json}");
    for key in ["passes", "moves_applied", "key_evaluations", "improve_calls", "runs"] {
        let values = scrape_counter(&json, key);
        assert_eq!(values.len(), 4, "totals + 3 restarts for {key}: {json}");
        assert_eq!(
            values[0],
            values[1..].iter().sum::<u64>(),
            "totals must equal per-restart sums for {key}"
        );
    }
    assert_eq!(scrape_counter(&json, "runs")[0], 3);
    assert!(scrape_counter(&json, "passes")[0] > 0, "a real run executes passes");

    // Single-run metrics + JSONL trace together.
    let jsonl_file = dir.join("trace.jsonl");
    let single_metrics = dir.join("metrics_single.json");
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--metrics"])
        .arg(&single_metrics)
        .arg("--trace-json")
        .arg(&jsonl_file)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let jsonl = std::fs::read_to_string(&jsonl_file).expect("trace file");
    assert!(jsonl.lines().count() > 3, "{jsonl}");
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert!(line.contains("\"event\": \""), "{line}");
    }
    assert!(jsonl.contains("\"event\": \"iteration_start\""));
    assert!(jsonl.contains("\"event\": \"improve\""));
    assert!(jsonl.contains("\"initial_key\": {\"feasible_blocks\": "));
    let json = std::fs::read_to_string(&single_metrics).expect("metrics file");
    assert_eq!(scrape_counter(&json, "runs"), vec![1, 1], "totals + one restart");

    // Traces are per-run: combining them with multiple restarts is an
    // explicit error, not a silent no-op.
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--restarts", "2", "--trace-json"])
        .arg(dir.join("never.jsonl"))
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--restarts 1"));
}

#[test]
fn partition_rejects_bad_inputs() {
    let out = fpart()
        .args(["partition", "/nonexistent.fhg", "--device", "XC3020"])
        .output()
        .expect("runs");
    assert!(!out.status.success());

    let dir = temp_dir("bad");
    let netlist = dir.join("c.fhg");
    std::fs::write(&netlist, "node a 1\nnet n a\n").unwrap();
    // no device given
    let out = fpart().arg("partition").arg(&netlist).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--device"));
    // unknown device
    let out =
        fpart().arg("partition").arg(&netlist).args(["--device", "XC9999"]).output().expect("runs");
    assert!(!out.status.success());
    // unknown method
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--s-max", "5", "--t-max", "5", "--method", "magic"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn verify_accepts_partition_output_and_rejects_tampering() {
    let dir = temp_dir("verify");
    let netlist = dir.join("c.fhg");
    let assignment = dir.join("a.txt");
    let out = fpart()
        .args(["gen", "rent", "--nodes", "150", "--terminals", "16", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--output"])
        .arg(&assignment)
        .output()
        .expect("runs");
    assert!(out.status.success());

    // Verifies clean…
    let out = fpart()
        .arg("verify")
        .arg(&netlist)
        .arg(&assignment)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("VALID"));

    // …and flags a tampered assignment (everything onto block 0).
    let text = std::fs::read_to_string(&assignment).unwrap();
    let tampered: String = text
        .lines()
        .map(|l| {
            let name = l.split_whitespace().next().unwrap();
            format!("{name} 0\n")
        })
        .collect();
    std::fs::write(&assignment, tampered).unwrap();
    let out = fpart()
        .arg("verify")
        .arg(&netlist)
        .arg(&assignment)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("violation"));
}

#[test]
fn blif_input_is_accepted() {
    let dir = temp_dir("blif");
    let blif = dir.join("adder.blif");
    std::fs::write(&blif, ".model adder\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
        .unwrap();
    let out = fpart().arg("stats").arg(&blif).output().expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("terminals:"), "{text}");
}

#[test]
fn gen_mcnc_circuit() {
    let dir = temp_dir("mcnc");
    let netlist = dir.join("c3540.fhg");
    let out = fpart()
        .args(["gen", "mcnc", "--circuit", "c3540", "--tech", "xc3000", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("283 nodes"), "{text}");
    assert!(text.contains("72 terminals"), "{text}");
}

#[test]
fn multilevel_flag_with_restarts_metrics_and_floor() {
    let dir = temp_dir("multilevel");
    let netlist = dir.join("c.fhg");
    let metrics = dir.join("metrics.json");
    let out = fpart()
        .args(["gen", "rent", "--nodes", "600", "--terminals", "48", "--seed", "5", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--multilevel", "--coarsen-floor", "64"])
        .args(["--restarts", "2", "--threads", "2", "--metrics"])
        .arg(&metrics)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("multilevel:"), "{text}");

    let json = std::fs::read_to_string(&metrics).expect("metrics file");
    assert!(json.contains("\"coarsen_levels\""), "{json}");
    assert!(json.contains("\"boundary_refinements\""), "{json}");
    assert!(json.contains("\"restarts\": 2"), "{json}");
}

#[test]
fn multilevel_flag_conflicts_are_usage_errors() {
    let dir = temp_dir("multilevel_err");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "window", "--nodes", "80", "--terminals", "12", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    // --coarsen-floor without --multilevel
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--coarsen-floor", "64"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--coarsen-floor"));

    // --multilevel with a non-engine method
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--multilevel", "--method", "kway"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));

    // --trace is per-pass and not available in the V-cycle
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--multilevel", "--trace"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn multilevel_deadline_reports_completion() {
    let dir = temp_dir("multilevel_deadline");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "rent", "--nodes", "900", "--terminals", "64", "--seed", "7", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--multilevel", "--deadline-ms", "0"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("completion: deadline_expired"), "{text}");
}

#[test]
fn write_assignment_round_trips_through_verify() {
    let dir = temp_dir("versioned_assignment");
    let netlist = dir.join("c.fhg");
    let assignment = dir.join("p.json");
    let out = fpart()
        .args(["gen", "window", "--nodes", "200", "--terminals", "20", "--seed", "3", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    // partition --write-assignment emits the versioned header...
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--write-assignment"])
        .arg(&assignment)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&assignment).expect("assignment written");
    let header = text.lines().next().expect("has a header");
    assert!(header.starts_with("#%fpart-assignment v1 blocks "), "header: {header}");

    // ...and verify reads it back and accepts the partition.
    let out = fpart()
        .arg("verify")
        .arg(&netlist)
        .arg(&assignment)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("VALID"));

    // The multilevel mode writes the same format.
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--multilevel", "--write-assignment"])
        .arg(&assignment)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = fpart()
        .arg("verify")
        .arg(&netlist)
        .arg(&assignment)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // A corrupted header is an input error (exit 2).
    std::fs::write(&assignment, "#%fpart-assignment v99 blocks 1\n").expect("write");
    let out = fpart()
        .arg("verify")
        .arg(&netlist)
        .arg(&assignment)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported assignment format"));
}

#[test]
fn eco_repairs_an_edited_netlist() {
    let dir = temp_dir("eco");
    let netlist = dir.join("c.fhg");
    let assignment = dir.join("p.json");
    let edits = dir.join("edits.jsonl");
    let repaired = dir.join("repaired.json");
    let metrics = dir.join("metrics.json");
    let out = fpart()
        .args(["gen", "window", "--nodes", "300", "--terminals", "24", "--seed", "9", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--write-assignment"])
        .arg(&assignment)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // A tiny edit: drop one cell, add a connected replacement. Node
    // names of the window generator are x<i>.
    std::fs::write(
        &edits,
        "{\"op\": \"remove_node\", \"name\": \"x7\"}\n\
         {\"op\": \"add_node\", \"name\": \"spin_a\", \"size\": 1}\n\
         {\"op\": \"add_net\", \"name\": \"spin_n\", \"pins\": [\"spin_a\", \"x8\"]}\n",
    )
    .expect("edits written");

    let out = fpart()
        .arg("eco")
        .arg(&netlist)
        .arg("--assignment")
        .arg(&assignment)
        .arg("--edits")
        .arg(&edits)
        .args(["--device", "XC3020", "--write-assignment"])
        .arg(&repaired)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("eco:"), "{text}");
    let metrics_text = std::fs::read_to_string(&metrics).expect("metrics written");
    assert!(metrics_text.contains("\"eco_edits_applied\": 3"), "{metrics_text}");
    assert!(
        metrics_text.contains(&format!("\"schema_version\": {}", fpart_core::SCHEMA_VERSION)),
        "{metrics_text}"
    );

    // The repaired assignment verifies against the *edited* netlist —
    // which the original netlist file no longer is, so verify must
    // reject it there (the repaired file names a node the old netlist
    // does not have).
    let out = fpart()
        .arg("verify")
        .arg(&netlist)
        .arg(&repaired)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));

    // A dangling edit is an input error with the script line.
    std::fs::write(&edits, "{\"op\": \"remove_node\", \"name\": \"nope\"}\n").expect("write");
    let out = fpart()
        .arg("eco")
        .arg(&netlist)
        .arg("--assignment")
        .arg(&assignment)
        .arg("--edits")
        .arg(&edits)
        .args(["--device", "XC3020"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 1: reference to unknown node"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// `--metrics -` and `--trace-json -` write their documents to stdout
/// instead of a file.
#[test]
fn metrics_and_trace_json_accept_stdout() {
    let dir = temp_dir("stdout_dash");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "window", "--nodes", "150", "--terminals", "16", "--seed", "3", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    // --metrics -: the JSON document lands on stdout alongside the
    // normal result summary.
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--metrics", "-"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("\"schema_version\": {}", fpart_core::SCHEMA_VERSION)),
        "{stdout}"
    );
    assert!(stdout.contains("\"totals\": {"), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("metrics written to stdout"));

    // --trace-json -: one JSON event object per line on stdout.
    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--trace-json", "-"])
        .output()
        .expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"event\": \"iteration_start\""), "{stdout}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("events written to stdout"));

    // Each `-` flag emits a different document; two of them on one
    // stdout stream would interleave into something unparseable, so the
    // combination is a usage error.
    for flags in [
        ["--metrics", "-", "--trace-json", "-"],
        ["--metrics", "-", "--trace-chrome", "-"],
        ["--trace-json", "-", "--trace-chrome", "-"],
    ] {
        let out = fpart()
            .arg("partition")
            .arg(&netlist)
            .args(["--device", "XC3020"])
            .args(flags)
            .output()
            .expect("runs");
        assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("may write to stdout"),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

/// `--progress` on its own still reports live pass counts: the
/// heartbeat reads the engine's metrics registry, which must be enabled
/// even when no `--metrics`/`--trace-chrome` output was requested.
#[test]
fn progress_alone_reports_real_pass_counts() {
    let dir = temp_dir("progress_passes");
    let netlist = dir.join("c.fhg");
    let out = fpart()
        .args(["gen", "window", "--nodes", "600", "--terminals", "24", "--seed", "11", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    for extra in [&["--progress"][..], &["--multilevel", "--coarsen-floor", "64", "--progress"]] {
        let out = fpart()
            .arg("partition")
            .arg(&netlist)
            .args(["--device", "XC3020"])
            .args(extra)
            .output()
            .expect("runs");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "{stderr}");
        // Heartbeats fire at iteration/level boundaries, after at least
        // one FM pass has run — a line claiming `passes=0` means the
        // heartbeat read a disabled registry.
        let progress: Vec<&str> = stderr.lines().filter(|l| l.starts_with("progress ")).collect();
        assert!(!progress.is_empty(), "{stderr}");
        for line in progress {
            assert!(!line.contains(" passes=0 "), "{line}");
        }
    }
}

/// `--trace-chrome` writes a Chrome trace-event array, `--progress`
/// streams heartbeat lines on stderr, and `fpart report` renders the
/// metrics file as a phase tree.
#[test]
fn chrome_trace_progress_and_report_pipeline() {
    let dir = temp_dir("profile");
    let netlist = dir.join("c.fhg");
    let metrics = dir.join("metrics.json");
    let chrome = dir.join("trace.chrome.json");
    let out = fpart()
        .args(["gen", "window", "--nodes", "600", "--terminals", "24", "--seed", "11", "--output"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(out.status.success());

    let out = fpart()
        .arg("partition")
        .arg(&netlist)
        .args(["--device", "XC3020", "--multilevel", "--coarsen-floor", "64", "--progress"])
        .arg("--metrics")
        .arg(&metrics)
        .arg("--trace-chrome")
        .arg(&chrome)
        .output()
        .expect("runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("progress "), "{stderr}");

    // The chrome trace is a JSON array of complete ("ph": "X") events.
    let trace = std::fs::read_to_string(&chrome).expect("chrome trace written");
    let trimmed = trace.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{trace}");
    assert!(trace.contains("\"ph\": \"X\""), "{trace}");
    assert!(trace.contains("\"cat\": \"fpart\""), "{trace}");
    assert!(trace.contains("\"name\": \"coarsen_level\""), "{trace}");

    // fpart report renders the phase tree from the metrics document.
    let out = fpart().arg("report").arg("--metrics").arg(&metrics).output().expect("runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase tree"), "{text}");
    assert!(text.contains("self-time coverage"), "{text}");
    assert!(text.contains("coarsen_level"), "{text}");
    assert!(text.contains("refine_level"), "{text}");
    assert!(text.contains("hot phases"), "{text}");

    // report --metrics - reads the document from stdin.
    use std::io::Write as _;
    use std::process::Stdio;
    let mut child = fpart()
        .args(["report", "--metrics", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawns");
    let doc = std::fs::read(&metrics).expect("metrics file");
    child.stdin.take().expect("piped stdin").write_all(&doc).expect("writes stdin");
    let out = child.wait_with_output().expect("finishes");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("phase tree"));

    // A wrong schema version is an input error naming both versions.
    let stale = dir.join("stale.json");
    std::fs::write(&stale, "{\"schema_version\": 6}\n").expect("write");
    let out = fpart().arg("report").arg("--metrics").arg(&stale).output().expect("runs");
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unsupported schema_version 6"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
