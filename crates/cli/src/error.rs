//! CLI error classification: every failure maps to a documented exit
//! code, and input errors print their parser message (with line/column
//! context) instead of a Rust backtrace.

use std::process::ExitCode;

/// A failed CLI invocation, classified by exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad flags, bad option values, unknown commands — exit 2.
    Usage(String),
    /// Unreadable or malformed input files (netlists, assignments);
    /// the message carries the parser's line/column context — exit 2.
    Input(String),
    /// The run itself failed (no feasible partition, I/O errors while
    /// writing results, failed verification) — exit 1.
    Runtime(String),
    /// SIGINT arrived and the best-so-far result was printed — exit 130
    /// (the conventional `128 + SIGINT` code).
    Interrupted,
    /// SIGTERM arrived; outputs and any final checkpoint were flushed —
    /// exit 143 (the conventional `128 + SIGTERM` code).
    Terminated,
}

impl CliError {
    /// Prints the error to stderr and returns the matching exit code.
    pub fn report(self) -> ExitCode {
        match self {
            CliError::Usage(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
            CliError::Input(message) => {
                eprintln!("error: {message}");
                ExitCode::from(2)
            }
            CliError::Runtime(message) => {
                eprintln!("error: {message}");
                ExitCode::FAILURE
            }
            CliError::Interrupted => {
                eprintln!("interrupted: printed the best result found so far");
                ExitCode::from(130)
            }
            CliError::Terminated => {
                eprintln!("terminated: flushed outputs and the best result found so far");
                ExitCode::from(143)
            }
        }
    }
}
