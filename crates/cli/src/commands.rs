//! Implementations of the `fpart` subcommands.

use std::path::Path;

use std::io::Write as _;

use fpart_baselines::{fbb_mw_partition, first_fit_partition, kway_partition, FlowConfig};
use fpart_core::{
    partition_observed, CancelToken, Completion, Counter, EventSink, FailedRestart, FanoutSink,
    FpartConfig, JsonlSink, Metrics, Observer, QualityReport, RunBudget, Trace, TraceEvent,
};
use fpart_device::{lower_bound, Device, DeviceConstraints};
use fpart_hypergraph::gen::{
    clustered_circuit, layered_circuit, rent_circuit, synthesize_mcnc, window_circuit,
    ClusteredConfig, LayeredConfig, RentConfig, Technology, WindowConfig,
};
use fpart_hypergraph::stats::{rent_exponent, CircuitStats};
use fpart_hypergraph::{Hypergraph, ParseLimits};

use crate::args::{Args, Spec};
use crate::error::CliError;
use crate::netlist_file;

/// `fpart partition <netlist> ...`
pub fn partition(raw: &[String]) -> Result<(), CliError> {
    let spec = Spec {
        valued: &[
            "device",
            "delta",
            "method",
            "output",
            "s-max",
            "t-max",
            "restarts",
            "threads",
            "deadline-ms",
            "max-passes",
            "metrics",
            "trace-json",
            "trace-chrome",
            "coarsen-floor",
            "write-assignment",
            "checkpoint",
            "checkpoint-interval-ms",
            "resume",
            "max-nodes",
            "max-nets",
            "max-pins",
            "max-name-len",
            "max-line-len",
            "max-memory-mb",
        ],
        switches: &["trace", "multilevel", "progress", "cache"],
    };
    let args = Args::parse(raw, spec).map_err(CliError::Usage)?;
    let input = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("partition needs a netlist file".into()))?;
    let limits = resolve_limits(&args).map_err(CliError::Usage)?;
    let graph = netlist_file::read_limited(Path::new(input), &limits).map_err(CliError::Input)?;

    let constraints = resolve_constraints(&args).map_err(CliError::Usage)?;
    let method = args.option("method").unwrap_or("fpart");
    let restarts: usize = args.option_parsed("restarts", 1).map_err(CliError::Usage)?;
    // Default from `FPART_THREADS` when set: results are bit-identical
    // at every thread count, so the environment can only change wall
    // time (CI runs its thread matrix through this).
    let threads: usize = args
        .option_parsed("threads", fpart_core::parallel::default_threads())
        .map_err(CliError::Usage)?;
    let deadline_ms: Option<u64> = args
        .option("deadline-ms")
        .map(|v| v.parse().map_err(|_| format!("option --deadline-ms: cannot parse `{v}`")))
        .transpose()
        .map_err(CliError::Usage)?;
    let max_passes: Option<u64> = args
        .option("max-passes")
        .map(|v| v.parse().map_err(|_| format!("option --max-passes: cannot parse `{v}`")))
        .transpose()
        .map_err(CliError::Usage)?;
    if restarts == 0 || threads == 0 {
        return Err(CliError::Usage("--restarts and --threads must be at least 1".into()));
    }
    // `--multilevel` selects the n-level V-cycle; it shares the FPART
    // engine, so restarts/threads/budget/metrics all apply to it too.
    let multilevel = args.switch("multilevel") || method == "multilevel";
    if args.switch("multilevel") && !(method == "fpart" || method == "multilevel") {
        return Err(CliError::Usage(format!("--multilevel conflicts with --method {method}")));
    }
    let engine_method = method == "fpart" || multilevel;
    // Only *explicit* flags conflict with non-engine methods: the
    // FPART_THREADS default is a machine-wide hint, not a request, and
    // the baselines simply have no parallel stages for it to size.
    let explicit_search = args.option("restarts").is_some() || args.option("threads").is_some();
    if (restarts > 1 || threads > 1) && explicit_search && !engine_method {
        return Err(CliError::Usage(
            "--restarts/--threads only apply to --method fpart/multilevel".into(),
        ));
    }
    if (deadline_ms.is_some() || max_passes.is_some()) && !engine_method {
        return Err(CliError::Usage(
            "--deadline-ms/--max-passes only apply to --method fpart/multilevel".into(),
        ));
    }
    if args.option("metrics").is_some() && !engine_method {
        return Err(CliError::Usage("--metrics only applies to --method fpart/multilevel".into()));
    }
    if args.option("trace-json").is_some() && (method != "fpart" || multilevel) {
        return Err(CliError::Usage("--trace-json only applies to --method fpart".into()));
    }
    if (args.option("trace-chrome").is_some() || args.switch("progress")) && !engine_method {
        return Err(CliError::Usage(
            "--trace-chrome/--progress only apply to --method fpart/multilevel".into(),
        ));
    }
    if args.switch("progress") && restarts > 1 {
        return Err(CliError::Usage(
            "--progress needs --restarts 1 (heartbeats are per-run)".into(),
        ));
    }
    // Each of these flags accepts `-` for stdout, but they emit
    // different documents (a JSONL stream, a metrics object, a Chrome
    // trace array); interleaving two of them on one stream would be
    // unparseable.
    let stdout_streams = ["metrics", "trace-json", "trace-chrome"]
        .into_iter()
        .filter(|flag| args.option(flag) == Some("-"))
        .count();
    if stdout_streams > 1 {
        return Err(CliError::Usage(
            "only one of --metrics/--trace-json/--trace-chrome may write to stdout (`-`)".into(),
        ));
    }
    if args.option("coarsen-floor").is_some() && !multilevel {
        return Err(CliError::Usage("--coarsen-floor needs --multilevel".into()));
    }
    if args.option("max-memory-mb").is_some() && !multilevel {
        return Err(CliError::Usage(
            "--max-memory-mb caps the multilevel hierarchy; it needs --multilevel".into(),
        ));
    }
    let durable = args.option("checkpoint").is_some() || args.option("resume").is_some();
    if durable && !engine_method {
        return Err(CliError::Usage(
            "--checkpoint/--resume only apply to --method fpart/multilevel".into(),
        ));
    }
    if durable
        && (args.switch("trace") || args.option("trace-json").is_some() || args.switch("progress"))
    {
        return Err(CliError::Usage(
            "--checkpoint/--resume run the restart search; they conflict with the \
             per-run --trace/--trace-json/--progress sinks"
                .into(),
        ));
    }
    if args.option("checkpoint-interval-ms").is_some() && args.option("checkpoint").is_none() {
        return Err(CliError::Usage("--checkpoint-interval-ms needs --checkpoint".into()));
    }
    let m = lower_bound(&graph, constraints);
    eprintln!(
        "{}: {} cells, {} nets, {} terminals; device {constraints}; lower bound M = {m}",
        input,
        graph.node_count(),
        graph.net_count(),
        graph.terminal_count()
    );

    // Budget: SIGINT/SIGTERM always cancel cooperatively; deadline and
    // pass caps only when requested. The handler lets the run stop at
    // the next pass/peel boundary and still flush its best result (and
    // any final checkpoint).
    crate::install_signal_handlers();
    let budget = RunBudget {
        deadline: deadline_ms.map(std::time::Duration::from_millis),
        max_passes,
        max_moves: None,
        cancel: Some(CancelToken::from_static(&crate::INTERRUPTED)),
    };

    let started = std::time::Instant::now();
    let mut completion = Completion::Complete;
    let method = if multilevel { "multilevel" } else { method };
    let (assignment, device_count, feasible, cut) = match method {
        "fpart" => {
            let outcome = run_fpart(&graph, constraints, &args, restarts, threads, budget)?;
            if args.switch("trace") {
                print_trace(&outcome.trace);
            }
            completion = outcome.completion;
            println!("{}", QualityReport::new(&outcome, constraints));
            (outcome.assignment, outcome.device_count, outcome.feasible, outcome.cut)
        }
        "kway" => {
            let o = kway_partition(&graph, constraints)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            (o.assignment, o.device_count, o.feasible, o.cut)
        }
        "flow" => {
            let o = fbb_mw_partition(&graph, constraints, &FlowConfig::default())
                .map_err(|e| CliError::Runtime(e.to_string()))?;
            (o.assignment, o.device_count, o.feasible, o.cut)
        }
        "naive" => {
            let o = first_fit_partition(&graph, constraints);
            (o.assignment, o.device_count, o.feasible, o.cut)
        }
        "multilevel" => {
            let outcome = run_multilevel(&graph, constraints, &args, restarts, threads, budget)?;
            completion = outcome.completion;
            println!("{}", QualityReport::new(&outcome, constraints));
            (outcome.assignment, outcome.device_count, outcome.feasible, outcome.cut)
        }
        "direct" => {
            let o = fpart_core::partition_direct(
                &graph,
                constraints,
                &FpartConfig::default(),
                &fpart_core::DirectConfig::default(),
            )
            .map_err(|e| CliError::Runtime(e.to_string()))?;
            (o.assignment, o.device_count, o.feasible, o.cut)
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown method `{other}` (fpart|kway|flow|naive|multilevel|direct)"
            )))
        }
    };

    println!(
        "{method}: {device_count} devices (lower bound {m}), feasible: {feasible}, cut nets: {cut}, \
         completion: {completion}, {:.2?}",
        started.elapsed()
    );
    print_block_summary(&graph, &assignment, device_count, constraints);
    if device_count > 1 {
        println!("{}", fpart_core::InterconnectReport::new(&graph, &assignment, device_count));
    }

    if let Some(output) = args.option("output") {
        let mut file = fpart_core::AtomicFile::create(Path::new(output))
            .map_err(|e| CliError::Runtime(format!("cannot create {output}: {e}")))?;
        fpart_core::write_assignment(&mut file, &graph, &assignment)
            .map_err(|e| CliError::Runtime(format!("cannot write {output}: {e}")))?;
        file.commit().map_err(|e| CliError::Runtime(format!("cannot write {output}: {e}")))?;
        eprintln!("assignment written to {output}");
    }
    if let Some(path) = args.option("write-assignment") {
        write_versioned_assignment(path, &graph, &assignment, device_count)?;
    }
    if completion == Completion::Cancelled || crate::interrupted() {
        // Results (and any --output/--metrics files) are complete; the
        // distinct exit code (130 SIGINT / 143 SIGTERM) tells scripts
        // the run was cut short. The flag check matters for multi-run
        // searches: the winning restart may have finished before the
        // signal landed, so its own completion reads `complete` even
        // though later restarts were cancelled.
        return Err(crate::signal_exit_error());
    }
    Ok(())
}

/// Runs `--method fpart` with whatever observability the flags request:
/// `--trace` (in-memory trace, printed afterwards), `--trace-json FILE`
/// (streamed JSON Lines), `--metrics FILE` (aggregated counter/timing
/// registry), `--trace-chrome FILE` (span profile as a Chrome trace
/// array), `--progress` (throttled heartbeat lines on stderr). All
/// combinations share the same engine entry points, so the partition
/// itself is bit-identical whichever flags are given.
#[allow(clippy::too_many_lines)]
fn run_fpart(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    args: &Args,
    restarts: usize,
    threads: usize,
    budget: RunBudget,
) -> Result<fpart_core::PartitionOutcome, CliError> {
    let config = FpartConfig { budget, ..FpartConfig::default() };
    let metrics_path = args.option("metrics");
    let trace_json_path = args.option("trace-json");
    let chrome_path = args.option("trace-chrome");
    let progress = args.switch("progress");
    let want_events = args.switch("trace") || trace_json_path.is_some() || progress;
    if want_events && restarts > 1 {
        return Err(CliError::Usage(
            "--trace/--trace-json/--progress need --restarts 1 (traces are per-run)".into(),
        ));
    }
    // Spans ride in the metrics registry, so a chrome trace needs
    // metered runs even when no --metrics file was asked for.
    let want_metrics = metrics_path.is_some() || chrome_path.is_some();
    let started = std::time::Instant::now();

    // The aggregate written to --metrics: totals plus per-restart parts,
    // the search's completion status, and restarts lost to panics.
    let mut aggregate: Option<(Metrics, Vec<Metrics>, Completion, Vec<FailedRestart>)> = None;

    let durable = args.option("checkpoint").is_some() || args.option("resume").is_some();
    let outcome = if durable {
        let report = run_durable(graph, constraints, &config, None, args, restarts, threads)?;
        let outcome = report.outcome;
        if want_metrics {
            aggregate = Some((report.totals, report.per_restart, report.completion, report.failed));
        }
        outcome
    } else if want_events {
        // Single observed run with the requested event sinks fanned out.
        let mut trace = Trace::enabled();
        let mut jsonl = match trace_json_path {
            Some(path) => Some(JsonlSink::new(EventOut::open(path)?)),
            None => None,
        };
        let mut progress_sink = progress.then_some(ProgressPrinter);
        let result = {
            let mut sinks: Vec<&mut dyn EventSink> = vec![&mut trace];
            if let Some(sink) = jsonl.as_mut() {
                sinks.push(sink);
            }
            if let Some(sink) = progress_sink.as_mut() {
                sinks.push(sink);
            }
            let mut fanout = FanoutSink::new(sinks);
            // Heartbeats report the pass counter, so --progress needs a
            // live registry even when no metrics output was requested.
            let metrics =
                if want_metrics || progress { Metrics::enabled() } else { Metrics::disabled() };
            let mut obs = Observer::new(metrics, Some(&mut fanout));
            if progress {
                obs.heartbeat = fpart_core::Heartbeat::every(PROGRESS_INTERVAL);
            }
            let result = partition_observed(graph, constraints, &config, &mut obs);
            result.map(|outcome| (outcome, obs.metrics.clone()))
        };
        let (mut outcome, mut metrics) = result.map_err(|e| CliError::Runtime(e.to_string()))?;
        if let Some(sink) = jsonl {
            let path = trace_json_path.expect("jsonl implies a path");
            let lines = sink.lines();
            sink.into_inner()
                .finish()
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            eprintln!("trace: {lines} events written to {}", dest_name(path));
        }
        if want_metrics {
            // Mirror partition_restarts_observed's per-restart shape for
            // a single run, Runs count included.
            metrics.bump(Counter::Runs);
            aggregate = Some((metrics.clone(), vec![metrics], outcome.completion, Vec::new()));
        }
        outcome.trace = trace;
        outcome
    } else if want_metrics {
        let report =
            fpart_core::partition_restarts_observed(graph, constraints, &config, restarts, threads)
                .map_err(|e| CliError::Runtime(e.to_string()))?;
        aggregate = Some((report.totals, report.per_restart, report.completion, report.failed));
        report.outcome
    } else if restarts > 1 {
        fpart_core::partition_restarts(graph, constraints, &config, restarts, threads)
            .map_err(|e| CliError::Runtime(e.to_string()))?
    } else {
        fpart_core::partition(graph, constraints, &config)
            .map_err(|e| CliError::Runtime(e.to_string()))?
    };

    if want_metrics {
        let (totals, per_restart, completion, failed) =
            aggregate.expect("metrics aggregate recorded above");
        if let Some(path) = metrics_path {
            let quality = QualityReport::new(&outcome, constraints);
            write_metrics_file(
                path,
                restarts,
                threads,
                started.elapsed(),
                &totals,
                &per_restart,
                completion,
                &failed,
                &quality,
            )
            .map_err(CliError::Runtime)?;
            eprintln!("metrics written to {}", dest_name(path));
        }
        if let Some(path) = chrome_path {
            write_chrome_trace(path, &totals)?;
        }
    }
    Ok(outcome)
}

/// Runs the restart search durably (`--checkpoint` / `--resume`).
///
/// The run is fingerprinted (netlist structure, device, configuration,
/// restart count) so a resume snapshot from a *different* run is
/// rejected up front. `--resume` restores completed restarts from the
/// checkpoint and runs only the missing indices; `--checkpoint` streams
/// snapshots to a dedicated writer thread (atomic temp-file + rename,
/// throttled by `--checkpoint-interval-ms`). The merged result is
/// bit-identical to an uninterrupted run at any thread count.
fn run_durable(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    config: &FpartConfig,
    ml: Option<&fpart_core::MultilevelConfig>,
    args: &Args,
    restarts: usize,
    threads: usize,
) -> Result<fpart_core::RestartsReport, CliError> {
    let fingerprint = fpart_core::fingerprint_run(graph, constraints, config, ml, restarts);
    let resume = match args.option("resume") {
        Some(path) => {
            let checkpoint = fpart_core::read_checkpoint(Path::new(path))
                .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            checkpoint.verify(fingerprint).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            eprintln!(
                "resume: {} of {restarts} restarts restored from {path}",
                checkpoint.completed.len()
            );
            Some(checkpoint)
        }
        None => None,
    };
    let interval: u64 =
        args.option_parsed("checkpoint-interval-ms", 1000).map_err(CliError::Usage)?;
    let writer = args.option("checkpoint").map(|path| {
        fpart_core::CheckpointWriter::spawn(
            std::path::PathBuf::from(path),
            std::time::Duration::from_millis(interval),
        )
    });
    let mut report = fpart_core::partition_restarts_durable(
        graph,
        constraints,
        config,
        ml,
        restarts,
        threads,
        fingerprint,
        resume.as_ref(),
        writer.as_ref(),
    )
    .map_err(|e| CliError::Runtime(e.to_string()))?;
    if let Some(writer) = writer {
        let path = writer.path().display().to_string();
        let writes = writer
            .finish()
            .map_err(|e| CliError::Runtime(format!("cannot write checkpoint {path}: {e}")))?;
        // The writer thread sits outside the restart fan-out; book its
        // writes on restart 0 so totals stay the per-restart sum.
        report.totals.add(Counter::CheckpointsWritten, writes);
        if let Some(first) = report.per_restart.first_mut() {
            first.add(Counter::CheckpointsWritten, writes);
        }
        eprintln!("checkpoint: {writes} snapshots written to {path}");
    }
    Ok(report)
}

/// Heartbeat throttle for `--progress`: at most one line per interval.
const PROGRESS_INTERVAL: std::time::Duration = std::time::Duration::from_millis(200);

/// Display name for an output path, mapping the `-` stdout convention.
fn dest_name(path: &str) -> &str {
    if path == "-" {
        "stdout"
    } else {
        path
    }
}

/// Writer behind an event-stream path: stdout for `-`, an atomic temp
/// file otherwise — the destination appears only on [`EventOut::finish`],
/// so a crash mid-stream never leaves a torn trace file.
enum EventOut {
    /// The `-` convention: stream straight to stdout.
    Stdout(std::io::Stdout),
    /// A real path: temp file next to it, renamed into place on finish.
    File(fpart_core::AtomicFile),
}

impl EventOut {
    fn open(path: &str) -> Result<EventOut, CliError> {
        if path == "-" {
            return Ok(EventOut::Stdout(std::io::stdout()));
        }
        fpart_core::AtomicFile::create(Path::new(path))
            .map(EventOut::File)
            .map_err(|e| CliError::Runtime(format!("cannot create {path}: {e}")))
    }

    /// Completes the stream: flush for stdout, atomic commit for files.
    fn finish(mut self) -> std::io::Result<()> {
        self.flush()?;
        match self {
            EventOut::Stdout(_) => Ok(()),
            EventOut::File(file) => file.commit(),
        }
    }
}

impl std::io::Write for EventOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            EventOut::Stdout(out) => out.write(buf),
            EventOut::File(file) => file.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            EventOut::Stdout(out) => out.flush(),
            EventOut::File(file) => file.flush(),
        }
    }
}

/// Writes the merged span profile as a Chrome trace-event array
/// (load in Perfetto / `chrome://tracing`). `-` writes to stdout.
fn write_chrome_trace(path: &str, totals: &Metrics) -> Result<(), CliError> {
    let json = totals.spans().to_chrome_json();
    let events = totals.spans().events().len();
    if path == "-" {
        std::io::stdout()
            .write_all(json.as_bytes())
            .map_err(|e| CliError::Runtime(format!("cannot write stdout: {e}")))?;
    } else {
        fpart_core::write_atomic(Path::new(path), json.as_bytes())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    }
    eprintln!("chrome trace: {events} span events written to {}", dest_name(path));
    Ok(())
}

/// Event sink for `--progress`: renders the engine's throttled heartbeat
/// events as human-readable lines on stderr and ignores every other
/// event class (those belong to `--trace`/`--trace-json`).
struct ProgressPrinter;

impl EventSink for ProgressPrinter {
    fn record_event(&mut self, event: &TraceEvent) {
        let TraceEvent::Progress {
            phase,
            level,
            passes,
            moves,
            cut,
            elapsed_ms,
            deadline_remaining_ms,
            passes_remaining,
        } = event
        else {
            return;
        };
        let mut line =
            format!("progress {} level {level}: passes={passes} moves={moves}", phase.as_str());
        if let Some(cut) = cut {
            line.push_str(&format!(" cut={cut}"));
        }
        line.push_str(&format!(" elapsed={elapsed_ms}ms"));
        if let Some(ms) = deadline_remaining_ms {
            line.push_str(&format!(" deadline_remaining={ms}ms"));
        }
        if let Some(p) = passes_remaining {
            line.push_str(&format!(" passes_remaining={p}"));
        }
        eprintln!("{line}");
    }
}

/// Runs the n-level multilevel mode (`--multilevel` /
/// `--method multilevel`): coarsen to `--coarsen-floor`, FPART on the
/// coarsest hypergraph, boundary-only FM at every uncoarsening level.
/// Shares the flat engine's restarts/threads/budget/metrics plumbing;
/// event traces are per-pass and not supported here.
fn run_multilevel(
    graph: &Hypergraph,
    constraints: DeviceConstraints,
    args: &Args,
    restarts: usize,
    threads: usize,
    budget: RunBudget,
) -> Result<fpart_core::PartitionOutcome, CliError> {
    if args.switch("trace") || args.option("trace-json").is_some() {
        return Err(CliError::Usage(
            "--trace/--trace-json are not available with --multilevel".into(),
        ));
    }
    let coarsen_floor: usize = args.option_parsed("coarsen-floor", 256).map_err(CliError::Usage)?;
    if coarsen_floor < 2 {
        return Err(CliError::Usage("--coarsen-floor must be at least 2".into()));
    }
    let config = FpartConfig { budget, ..FpartConfig::default() };
    // `--max-memory-mb` caps the estimated bytes held by the coarsening
    // hierarchy: coarsening stops early and the run completes
    // `degraded` instead of exhausting memory.
    let max_memory_mb: Option<u64> = args
        .option("max-memory-mb")
        .map(|v| v.parse().map_err(|_| format!("option --max-memory-mb: cannot parse `{v}`")))
        .transpose()
        .map_err(CliError::Usage)?;
    let memory = max_memory_mb.map_or_else(fpart_core::MemoryBudget::default, |mb| {
        fpart_core::MemoryBudget::capped(mb.saturating_mul(1024 * 1024))
    });
    // `--threads` is the total worker budget. The restart wrappers split
    // it themselves; the single-run path below hands the whole budget to
    // the V-cycle's intra-run stages (the field is overridden by the
    // wrappers, so setting it here is only visible to that path).
    // `--cache` wires a fingerprint-keyed memo store into the run.
    // Within one process it lets identical restarts share coarsening
    // work; results are bit-identical with or without it. (The server
    // is where the store pays off across requests — it defaults on
    // there.)
    let memo = args.switch("cache").then(fpart_core::MemoStore::shared);
    let ml = fpart_core::MultilevelConfig {
        coarsen_floor,
        threads,
        memory,
        memo,
        ..fpart_core::MultilevelConfig::default()
    };
    let metrics_path = args.option("metrics");
    let chrome_path = args.option("trace-chrome");
    let progress = args.switch("progress");
    let want_metrics = metrics_path.is_some() || chrome_path.is_some();
    let started = std::time::Instant::now();

    // The aggregate shared by --metrics and --trace-chrome (spans ride
    // in the metrics registry).
    let mut aggregate: Option<(Metrics, Vec<Metrics>, Completion, Vec<FailedRestart>)> = None;

    let durable = args.option("checkpoint").is_some() || args.option("resume").is_some();
    let outcome = if durable {
        let report = run_durable(graph, constraints, &config, Some(&ml), args, restarts, threads)?;
        let outcome = report.outcome;
        if want_metrics {
            aggregate = Some((report.totals, report.per_restart, report.completion, report.failed));
        }
        outcome
    } else if progress {
        // Single observed run so heartbeat events have a live sink.
        let mut sink = ProgressPrinter;
        // Heartbeats report the pass counter, so --progress needs a
        // live registry even when no metrics output was requested.
        let metrics = Metrics::enabled();
        let mut obs = Observer::new(metrics, Some(&mut sink));
        obs.heartbeat = fpart_core::Heartbeat::every(PROGRESS_INTERVAL);
        let result =
            fpart_core::partition_multilevel_observed(graph, constraints, &config, &ml, &mut obs);
        let mut metrics = obs.metrics;
        let outcome = result.map_err(|e| CliError::Runtime(e.to_string()))?;
        if want_metrics {
            metrics.bump(Counter::Runs);
            aggregate = Some((metrics.clone(), vec![metrics], outcome.completion, Vec::new()));
        }
        outcome
    } else if want_metrics {
        let report = fpart_core::partition_multilevel_restarts_observed(
            graph,
            constraints,
            &config,
            &ml,
            restarts,
            threads,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        aggregate = Some((report.totals, report.per_restart, report.completion, report.failed));
        report.outcome
    } else if restarts > 1 {
        fpart_core::partition_multilevel_restarts(
            graph,
            constraints,
            &config,
            &ml,
            restarts,
            threads,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?
    } else {
        fpart_core::partition_multilevel(graph, constraints, &config, &ml)
            .map_err(|e| CliError::Runtime(e.to_string()))?
    };

    if want_metrics {
        let (totals, per_restart, completion, failed) =
            aggregate.expect("metrics aggregate recorded above");
        if let Some(path) = metrics_path {
            let quality = QualityReport::new(&outcome, constraints);
            write_metrics_file(
                path,
                restarts,
                threads,
                started.elapsed(),
                &totals,
                &per_restart,
                completion,
                &failed,
                &quality,
            )
            .map_err(CliError::Runtime)?;
            eprintln!("metrics written to {}", dest_name(path));
        }
        if let Some(path) = chrome_path {
            write_chrome_trace(path, &totals)?;
        }
    }
    Ok(outcome)
}

/// Writes the `--metrics` document: a single JSON object with
/// `schema_version`, the run shape (`restarts`, `threads`), the CLI's
/// wall time in `elapsed_ms` (the denominator `fpart report` uses for
/// phase percentages), the search's `completion` status, restarts lost
/// to panics under `failed_restarts`, the merged `totals` registry,
/// each restart's registry under `per_restart` (counter totals equal
/// the per-restart sums), and the winning partition's `quality` report.
/// `path` `-` writes to stdout.
#[allow(clippy::too_many_arguments)]
fn write_metrics_file(
    path: &str,
    restarts: usize,
    threads: usize,
    elapsed: std::time::Duration,
    totals: &Metrics,
    per_restart: &[Metrics],
    completion: Completion,
    failed: &[FailedRestart],
    quality: &QualityReport,
) -> Result<(), String> {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema_version\": {}, \"restarts\": {restarts}, \"threads\": {threads}, \
         \"elapsed_ms\": {}, ",
        fpart_core::SCHEMA_VERSION,
        elapsed.as_millis()
    ));
    out.push_str(&format!("\"completion\": \"{}\", \"failed_restarts\": [", completion.as_str()));
    for (i, f) in failed.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"restart\": {}, \"message\": {}}}",
            f.restart,
            json_string(&f.message)
        ));
    }
    out.push_str(&format!("], \"totals\": {}, \"per_restart\": [", totals.to_json()));
    for (i, m) in per_restart.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&m.to_json());
    }
    out.push_str(&format!("], \"quality\": {}}}\n", quality.to_json()));
    if path == "-" {
        std::io::stdout().write_all(out.as_bytes()).map_err(|e| format!("cannot write stdout: {e}"))
    } else {
        fpart_core::write_atomic(Path::new(path), out.as_bytes())
            .map_err(|e| format!("cannot write {path}: {e}"))
    }
}

/// Renders a string as a quoted JSON literal (panic payloads can carry
/// quotes and control characters).
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Resolves the `--max-*` input limits: [`ParseLimits::default`]'s sane
/// caps, individually overridable. Every reader (netlist formats and
/// the eco edit script) enforces them with typed line/column errors
/// before allocating anything proportional to a claimed size.
pub(crate) fn resolve_limits(args: &Args) -> Result<ParseLimits, String> {
    let defaults = ParseLimits::default();
    Ok(ParseLimits {
        max_nodes: args.option_parsed("max-nodes", defaults.max_nodes)?,
        max_nets: args.option_parsed("max-nets", defaults.max_nets)?,
        max_pins: args.option_parsed("max-pins", defaults.max_pins)?,
        max_name_len: args.option_parsed("max-name-len", defaults.max_name_len)?,
        max_line_len: args.option_parsed("max-line-len", defaults.max_line_len)?,
    })
}

fn resolve_constraints(args: &Args) -> Result<DeviceConstraints, String> {
    let delta: f64 = args.option_parsed("delta", 0.9)?;
    if !(0.0..=1.0).contains(&delta) || delta == 0.0 {
        return Err("--delta must be in (0, 1]".to_owned());
    }
    if let Some(name) = args.option("device") {
        let device = Device::by_name(name)
            .ok_or_else(|| format!("unknown device `{name}` (see `fpart devices`)"))?;
        return Ok(device.constraints(delta));
    }
    match (args.option("s-max"), args.option("t-max")) {
        (Some(_), Some(_)) => Ok(DeviceConstraints::new(
            args.option_parsed("s-max", 0u64)?,
            args.option_parsed("t-max", 0usize)?,
        )),
        _ => Err("give --device NAME, or both --s-max and --t-max".to_owned()),
    }
}

fn print_block_summary(
    graph: &Hypergraph,
    assignment: &[u32],
    device_count: usize,
    constraints: DeviceConstraints,
) {
    if device_count == 0 {
        return;
    }
    let state =
        fpart_core::PartitionState::from_assignment(graph, assignment.to_vec(), device_count);
    for b in 0..device_count {
        let fits = constraints.fits(state.block_size(b), state.block_terminals(b));
        println!(
            "  block {b:3}: S={:4}/{}  T={:4}/{}  {}",
            state.block_size(b),
            constraints.s_max,
            state.block_terminals(b),
            constraints.t_max,
            if fits { "ok" } else { "VIOLATION" }
        );
    }
}

/// Renders a recorded trace, one line per event, in a **stable,
/// documented column order** so `--trace` output is diffable:
///
/// ```text
/// iteration <k>: remainder S=<size> T=<terminals>
///   bipartition <method>: peeled S=<size> T=<terminals>
///   improve <kind> blocks=<n>: <initial_key> -> <final_key> passes=<p> moves=<m> restarts=<r>
///   solution <class>: <total> blocks
/// ```
///
/// `<kind>` is the stable snake_case slot name
/// ([`fpart_core::ImproveKind::as_str`]); solution keys render via
/// [`fpart_core::SolutionKey`]'s `Display`
/// (`f=<feasible>/<total> d=<infeasibility> tsum=<terminal_sum>
/// ext=<external_balance> cut=<cut>`, floats to three decimals). Any
/// change here is a compatibility break for trace-diffing tests.
fn print_trace(trace: &Trace) {
    for event in trace.events() {
        match event {
            TraceEvent::IterationStart { iteration, remainder_size, remainder_terminals } => {
                eprintln!(
                    "iteration {iteration}: remainder S={remainder_size} T={remainder_terminals}"
                );
            }
            TraceEvent::Bipartition { method, peeled_size, peeled_terminals, .. } => {
                eprintln!("  bipartition {method:?}: peeled S={peeled_size} T={peeled_terminals}");
            }
            TraceEvent::Improve {
                kind,
                blocks,
                initial_key,
                final_key,
                passes,
                moves,
                restarts,
                ..
            } => {
                eprintln!(
                    "  improve {} blocks={}: {initial_key} -> {final_key} \
                     passes={passes} moves={moves} restarts={restarts}",
                    kind.as_str(),
                    blocks.len()
                );
            }
            TraceEvent::Progress { phase, level, passes, moves, cut, elapsed_ms, .. } => {
                eprintln!(
                    "  progress {} level {level}: passes={passes} moves={moves} cut={} \
                     elapsed={elapsed_ms}ms",
                    phase.as_str(),
                    cut.map_or_else(|| "-".to_owned(), |c| c.to_string())
                );
            }
            TraceEvent::Solution { class, blocks, .. } => {
                eprintln!("  solution {class:?}: {} blocks", blocks.len());
            }
        }
    }
}

/// Writes the versioned `#%fpart-assignment` format (the `fpart eco`
/// input format) to `path`.
fn write_versioned_assignment(
    path: &str,
    graph: &Hypergraph,
    assignment: &[u32],
    blocks: usize,
) -> Result<(), CliError> {
    let mut file = fpart_core::AtomicFile::create(Path::new(path))
        .map_err(|e| CliError::Runtime(format!("cannot create {path}: {e}")))?;
    fpart_core::write_assignment_versioned(&mut file, graph, assignment, blocks)
        .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    file.commit().map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
    eprintln!("versioned assignment written to {path}");
    Ok(())
}

/// `fpart eco <netlist> --assignment FILE --edits FILE ...`
///
/// Applies a JSON-Lines edit script to the netlist and repairs the
/// given assignment onto the edited design: surviving cells keep their
/// block, new/orphaned cells are placed constructively, and only the
/// dirty blocks are refined. Large edits (past `--churn-threshold`)
/// fall back to a full multilevel repartition automatically.
#[allow(clippy::too_many_lines)]
pub fn eco(raw: &[String]) -> Result<(), CliError> {
    let spec = Spec {
        valued: &[
            "device",
            "delta",
            "s-max",
            "t-max",
            "assignment",
            "edits",
            "restarts",
            "threads",
            "deadline-ms",
            "max-passes",
            "metrics",
            "churn-threshold",
            "output",
            "write-assignment",
            "max-nodes",
            "max-nets",
            "max-pins",
            "max-name-len",
            "max-line-len",
        ],
        switches: &["cache"],
    };
    let args = Args::parse(raw, spec).map_err(CliError::Usage)?;
    let input =
        args.positional(0).ok_or_else(|| CliError::Usage("eco needs a netlist file".into()))?;
    let limits = resolve_limits(&args).map_err(CliError::Usage)?;
    let graph = netlist_file::read_limited(Path::new(input), &limits).map_err(CliError::Input)?;
    let constraints = resolve_constraints(&args).map_err(CliError::Usage)?;
    let assignment_file = args
        .option("assignment")
        .ok_or_else(|| CliError::Usage("eco needs --assignment FILE".into()))?;
    let edits_file =
        args.option("edits").ok_or_else(|| CliError::Usage("eco needs --edits FILE".into()))?;
    let restarts: usize = args.option_parsed("restarts", 1).map_err(CliError::Usage)?;
    // Default from `FPART_THREADS` when set: results are bit-identical
    // at every thread count, so the environment can only change wall
    // time (CI runs its thread matrix through this).
    let threads: usize = args
        .option_parsed("threads", fpart_core::parallel::default_threads())
        .map_err(CliError::Usage)?;
    if restarts == 0 || threads == 0 {
        return Err(CliError::Usage("--restarts and --threads must be at least 1".into()));
    }
    let deadline_ms: Option<u64> = args
        .option("deadline-ms")
        .map(|v| v.parse().map_err(|_| format!("option --deadline-ms: cannot parse `{v}`")))
        .transpose()
        .map_err(CliError::Usage)?;
    let max_passes: Option<u64> = args
        .option("max-passes")
        .map(|v| v.parse().map_err(|_| format!("option --max-passes: cannot parse `{v}`")))
        .transpose()
        .map_err(CliError::Usage)?;
    let churn_threshold: f64 =
        args.option_parsed("churn-threshold", 0.15).map_err(CliError::Usage)?;
    if !(0.0..=1.0).contains(&churn_threshold) {
        return Err(CliError::Usage("--churn-threshold must be in [0, 1]".into()));
    }

    // Previous assignment (plain or versioned) resolved against the
    // *pre-edit* netlist; the node map carries it onto the edited one.
    let file = std::fs::File::open(assignment_file)
        .map_err(|e| CliError::Input(format!("cannot read {assignment_file}: {e}")))?;
    let (previous, prev_k) = fpart_core::read_assignment(file, &graph)
        .map_err(|e| CliError::Input(format!("{assignment_file}: {e}")))?;
    let edits = std::fs::File::open(edits_file)
        .map_err(|e| CliError::Input(format!("cannot read {edits_file}: {e}")))?;
    let script = fpart_hypergraph::EditScript::read_limited(edits, &limits)
        .map_err(|e| CliError::Input(format!("{edits_file}: {e}")))?;
    let applied = fpart_hypergraph::apply_script(&graph, &script)
        .map_err(|e| CliError::Input(format!("{edits_file}: {e}")))?;
    eprintln!(
        "{input}: {} cells in {prev_k} blocks; {} edits -> {} cells (+{} -{}); device {constraints}",
        graph.node_count(),
        script.len(),
        applied.graph.node_count(),
        applied.added_nodes,
        applied.removed_nodes
    );

    crate::install_signal_handlers();
    let budget = RunBudget {
        deadline: deadline_ms.map(std::time::Duration::from_millis),
        max_passes,
        max_moves: None,
        cancel: Some(CancelToken::from_static(&crate::INTERRUPTED)),
    };
    let config = FpartConfig { budget, ..FpartConfig::default() };
    let eco_config = fpart_core::EcoConfig {
        churn_threshold,
        multilevel: fpart_core::MultilevelConfig {
            memo: args.switch("cache").then(fpart_core::MemoStore::shared),
            ..fpart_core::MultilevelConfig::default()
        },
        ..fpart_core::EcoConfig::default()
    };

    let started = std::time::Instant::now();
    let outcome = if let Some(path) = args.option("metrics") {
        let mut report = fpart_core::repartition_eco_restarts_observed(
            &applied.graph,
            constraints,
            &config,
            &eco_config,
            &previous,
            &applied.node_map,
            restarts,
            threads,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        // The script was applied once, before the restart fan-out; book
        // the edits on restart 0 so totals stay the per-restart sum.
        report.totals.add(Counter::EcoEditsApplied, script.len() as u64);
        if let Some(first) = report.per_restart.first_mut() {
            first.add(Counter::EcoEditsApplied, script.len() as u64);
        }
        let quality = QualityReport::new(&report.outcome, constraints);
        write_metrics_file(
            path,
            restarts,
            threads,
            started.elapsed(),
            &report.totals,
            &report.per_restart,
            report.completion,
            &report.failed,
            &quality,
        )
        .map_err(CliError::Runtime)?;
        eprintln!("metrics written to {}", dest_name(path));
        report.outcome
    } else if restarts > 1 {
        fpart_core::repartition_eco_restarts(
            &applied.graph,
            constraints,
            &config,
            &eco_config,
            &previous,
            &applied.node_map,
            restarts,
            threads,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?
    } else {
        let report = fpart_core::repartition_eco(
            &applied.graph,
            constraints,
            &config,
            &eco_config,
            &previous,
            &applied.node_map,
        )
        .map_err(|e| CliError::Runtime(e.to_string()))?;
        eprintln!(
            "eco: {} (churn {:.4}, carried {}, placed {}, removed {}, dirty blocks {})",
            if report.repaired { "repaired in place" } else { "fell back to full repartition" },
            report.churn,
            report.carried,
            report.placed,
            report.removed,
            report.dirty_blocks
        );
        report.outcome
    };

    println!("{}", QualityReport::new(&outcome, constraints));
    println!(
        "eco: {} devices (lower bound {}), feasible: {}, cut nets: {}, completion: {}, {:.2?}",
        outcome.device_count,
        outcome.lower_bound,
        outcome.feasible,
        outcome.cut,
        outcome.completion,
        started.elapsed()
    );
    print_block_summary(&applied.graph, &outcome.assignment, outcome.device_count, constraints);

    if let Some(output) = args.option("output") {
        let mut file = fpart_core::AtomicFile::create(Path::new(output))
            .map_err(|e| CliError::Runtime(format!("cannot create {output}: {e}")))?;
        fpart_core::write_assignment(&mut file, &applied.graph, &outcome.assignment)
            .map_err(|e| CliError::Runtime(format!("cannot write {output}: {e}")))?;
        file.commit().map_err(|e| CliError::Runtime(format!("cannot write {output}: {e}")))?;
        eprintln!("assignment written to {output}");
    }
    if let Some(path) = args.option("write-assignment") {
        write_versioned_assignment(
            path,
            &applied.graph,
            &outcome.assignment,
            outcome.device_count,
        )?;
    }
    if outcome.completion == Completion::Cancelled || crate::interrupted() {
        return Err(crate::signal_exit_error());
    }
    Ok(())
}

/// `fpart stats <netlist>`
pub fn stats(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, Spec { valued: &[], switches: &[] }).map_err(CliError::Usage)?;
    let input =
        args.positional(0).ok_or_else(|| CliError::Usage("stats needs a netlist file".into()))?;
    let graph = netlist_file::read(Path::new(input)).map_err(CliError::Input)?;
    let s = CircuitStats::of(&graph);
    println!("{input}: `{}`", graph.name());
    println!("  nodes:      {:8}  (total size {})", s.nodes, s.total_size);
    println!("  nets:       {:8}  (pins {})", s.nets, s.pins);
    println!("  terminals:  {:8}", s.terminals);
    println!(
        "  net degree: mean {:.2}, max {}; node degree: mean {:.2}, max {}",
        s.mean_net_degree, s.max_net_degree, s.mean_node_degree, s.max_node_degree
    );
    println!("  terminal-net fraction: {:.3}", s.terminal_net_fraction);
    match rent_exponent(&graph) {
        Some(p) => println!("  estimated Rent exponent: {p:.3}"),
        None => println!("  estimated Rent exponent: (circuit too small)"),
    }
    Ok(())
}

/// `fpart gen <kind> ...`
pub fn generate(raw: &[String]) -> Result<(), CliError> {
    let spec = Spec {
        valued: &[
            "nodes",
            "terminals",
            "seed",
            "output",
            "circuit",
            "tech",
            "clusters",
            "cluster-size",
            "levels",
            "width",
        ],
        switches: &[],
    };
    let args = Args::parse(raw, spec).map_err(CliError::Usage)?;
    let kind = args.positional(0).ok_or_else(|| {
        CliError::Usage("gen needs a kind (rent|window|layered|clustered|mcnc)".into())
    })?;
    let output =
        args.option("output").ok_or_else(|| CliError::Usage("gen needs --output FILE".into()))?;
    let seed: u64 = args.option_parsed("seed", 1).map_err(CliError::Usage)?;
    let nodes: usize = args.option_parsed("nodes", 500).map_err(CliError::Usage)?;
    let terminals: usize = args.option_parsed("terminals", 40).map_err(CliError::Usage)?;

    let graph = match kind {
        "rent" => rent_circuit(&RentConfig::new("generated", nodes, terminals), seed),
        "window" => window_circuit(&WindowConfig::new("generated", nodes, terminals), seed),
        "layered" => {
            let levels: usize = args.option_parsed("levels", 8).map_err(CliError::Usage)?;
            let width: usize = args.option_parsed("width", 16).map_err(CliError::Usage)?;
            layered_circuit(&LayeredConfig::new("generated", levels, width), seed)
        }
        "clustered" => {
            let clusters: usize = args.option_parsed("clusters", 4).map_err(CliError::Usage)?;
            let cluster_size: usize =
                args.option_parsed("cluster-size", 25).map_err(CliError::Usage)?;
            clustered_circuit(&ClusteredConfig::new("generated", clusters, cluster_size), seed).0
        }
        "mcnc" => {
            let circuit = args
                .option("circuit")
                .ok_or_else(|| CliError::Usage("mcnc needs --circuit NAME".into()))?;
            let profile = fpart_hypergraph::gen::find_profile(circuit)
                .ok_or_else(|| CliError::Usage(format!("unknown MCNC circuit `{circuit}`")))?;
            let tech = match args.option("tech").unwrap_or("xc3000") {
                "xc2000" => Technology::Xc2000,
                "xc3000" => Technology::Xc3000,
                other => {
                    return Err(CliError::Usage(format!("unknown tech `{other}` (xc2000|xc3000)")))
                }
            };
            synthesize_mcnc(profile, tech)
        }
        other => return Err(CliError::Usage(format!("unknown generator `{other}`"))),
    };

    netlist_file::write(Path::new(output), &graph).map_err(CliError::Runtime)?;
    println!(
        "wrote {}: {} nodes, {} nets, {} terminals",
        output,
        graph.node_count(),
        graph.net_count(),
        graph.terminal_count()
    );
    Ok(())
}

/// `fpart convert <in> <out>`
pub fn convert(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, Spec { valued: &[], switches: &[] }).map_err(CliError::Usage)?;
    let input =
        args.positional(0).ok_or_else(|| CliError::Usage("convert needs an input file".into()))?;
    let output =
        args.positional(1).ok_or_else(|| CliError::Usage("convert needs an output file".into()))?;
    let graph = netlist_file::read(Path::new(input)).map_err(CliError::Input)?;
    netlist_file::write(Path::new(output), &graph).map_err(CliError::Runtime)?;
    println!("converted {input} -> {output}");
    Ok(())
}

/// `fpart verify <netlist> <assignment> ...`
pub fn verify(raw: &[String]) -> Result<(), CliError> {
    let spec = Spec { valued: &["device", "delta", "s-max", "t-max"], switches: &[] };
    let args = Args::parse(raw, spec).map_err(CliError::Usage)?;
    let netlist =
        args.positional(0).ok_or_else(|| CliError::Usage("verify needs a netlist file".into()))?;
    let assignment_file = args
        .positional(1)
        .ok_or_else(|| CliError::Usage("verify needs an assignment file".into()))?;
    let graph = netlist_file::read(Path::new(netlist)).map_err(CliError::Input)?;
    let constraints = resolve_constraints(&args).map_err(CliError::Usage)?;

    // Assignment file: `node_name block` lines (the partition command's
    // --output format).
    let file = std::fs::File::open(assignment_file)
        .map_err(|e| CliError::Input(format!("cannot read {assignment_file}: {e}")))?;
    let (assignment, k) = fpart_core::read_assignment(file, &graph)
        .map_err(|e| CliError::Input(format!("{assignment_file}: {e}")))?;

    let verification = fpart_core::verify_assignment(&graph, &assignment, k, constraints);
    println!("{k} blocks, cut {} nets; device {constraints}", verification.cut);
    if verification.is_feasible() {
        println!("VALID: every block meets the device constraints");
        Ok(())
    } else {
        for violation in &verification.violations {
            println!("violation: {violation}");
        }
        Err(CliError::Runtime(format!("{} violations found", verification.violations.len())))
    }
}

/// `fpart devices`
pub fn devices(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, Spec { valued: &[], switches: &[] }).map_err(CliError::Usage)?;
    if let Some(unexpected) = args.positional(0) {
        return Err(CliError::Usage(format!("devices takes no arguments (got `{unexpected}`)")));
    }
    println!("{:>8} {:>6} {:>6}   S_MAX at δ=0.9", "device", "CLBs", "IOBs");
    for d in Device::catalog() {
        println!("{:>8} {:>6} {:>6}   {}", d.name, d.s_ds, d.t_max, d.constraints(0.9).s_max);
    }
    Ok(())
}
