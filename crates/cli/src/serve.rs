//! `fpart serve` — the long-running sessionful partition server.
//!
//! Speaks the JSON-Lines protocol of [`fpart_core::server`] over
//! stdio by default, or over a Unix domain socket with `--listen`.
//! SIGINT/SIGTERM shut the server down cooperatively: in-flight runs
//! are cancelled at their next pass boundary and still produce their
//! final replies before the process exits.

use std::io::{BufReader, Write};
use std::path::Path;

use fpart_core::{CancelToken, Server, ServerConfig};

use crate::args::{Args, Spec};
use crate::commands::resolve_limits;
use crate::error::CliError;
use crate::{interrupted, signal_exit_error};

const SPEC: Spec<'static> = Spec {
    valued: &[
        "listen",
        "threads",
        "queue",
        "heartbeat-ms",
        "max-nodes",
        "max-nets",
        "max-pins",
        "max-name-len",
        "max-line-len",
    ],
    switches: &["no-cache"],
};

/// Entry point of the `serve` subcommand.
pub fn serve(raw: &[String]) -> Result<(), CliError> {
    let args = Args::parse(raw, SPEC).map_err(CliError::Usage)?;
    let threads: usize = args
        .option_parsed("threads", fpart_core::parallel::default_threads())
        .map_err(CliError::Usage)?;
    let queue_capacity: usize = args.option_parsed("queue", 4).map_err(CliError::Usage)?;
    let heartbeat_ms: u64 = args.option_parsed("heartbeat-ms", 200).map_err(CliError::Usage)?;
    if threads == 0 || queue_capacity == 0 {
        return Err(CliError::Usage("--threads and --queue must be at least 1".into()));
    }
    let limits = resolve_limits(&args).map_err(CliError::Usage)?;

    crate::install_signal_handlers();
    // Memoization (hierarchy cache + solution memo) is on by default —
    // warm repeated requests are the server's reason to exist;
    // `--no-cache` turns it off without changing any result bit.
    let memo = if args.switch("no-cache") { None } else { Some(fpart_core::MemoStore::shared()) };
    let config = ServerConfig {
        threads,
        queue_capacity,
        limits,
        heartbeat_ms,
        stop: Some(CancelToken::from_static(&crate::INTERRUPTED)),
        memo,
    };
    let server = Server::new(config);

    let result = if let Some(socket) = args.option("listen") {
        serve_listen(&server, Path::new(socket))
    } else {
        let stdin = std::io::stdin();
        // `StdoutLock` is not `Send`; the unlocked handle is, and the
        // server serializes writes behind its own mutex anyway.
        server
            .serve(BufReader::new(stdin.lock()), std::io::stdout())
            .map_err(|e| CliError::Runtime(format!("server I/O error: {e}")))
    };
    // A signal-driven exit still flushes replies first (the server
    // cancels in-flight runs and joins its workers before returning);
    // report the conventional 130/143 so scripts see the interruption.
    if interrupted() {
        result?;
        return Err(signal_exit_error());
    }
    result
}

#[cfg(unix)]
fn serve_listen(server: &Server, socket: &Path) -> Result<(), CliError> {
    // Announce readiness on stdout so scripted clients can wait for
    // the socket without polling the filesystem.
    println!("listening {}", socket.display());
    let _ = std::io::stdout().flush();
    server
        .serve_unix(socket)
        .map_err(|e| CliError::Runtime(format!("cannot serve on {}: {e}", socket.display())))
}

#[cfg(not(unix))]
fn serve_listen(_server: &Server, _socket: &Path) -> Result<(), CliError> {
    Err(CliError::Usage("--listen requires a Unix platform; use stdio mode".into()))
}
