//! Format-dispatching netlist reading and writing (`.fhg` / `.hgr`).

use std::fs::File;
use std::path::Path;

use fpart_hypergraph::{Hypergraph, ParseLimits};

/// Reads a netlist with default resource limits, choosing the parser by
/// file extension (`.hgr` → hMETIS, `.blif` → BLIF, anything else →
/// `.fhg`).
///
/// # Errors
///
/// Returns a human-readable message on I/O or parse failure.
pub fn read(path: &Path) -> Result<Hypergraph, String> {
    read_limited(path, &ParseLimits::default())
}

/// Reads a netlist with explicit resource limits (the `--max-*` flags):
/// hostile inputs fail with a typed line/column message *before* any
/// allocation proportional to their claimed sizes.
///
/// # Errors
///
/// See [`read`].
pub fn read_limited(path: &Path, limits: &ParseLimits) -> Result<Hypergraph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let ext = |name: &str| path.extension().is_some_and(|e| e.eq_ignore_ascii_case(name));
    if ext("hgr") {
        fpart_hypergraph::hmetis::read_hmetis_limited(file, limits)
            .map_err(|e| format!("{}: {e}", path.display()))
    } else if ext("blif") {
        fpart_hypergraph::blif::read_blif_limited(file, limits)
            .map_err(|e| format!("{}: {e}", path.display()))
    } else {
        fpart_hypergraph::io::read_netlist_limited(file, limits)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Writes a netlist, choosing the format by file extension.
///
/// # Errors
///
/// Returns a human-readable message on I/O failure.
pub fn write(path: &Path, graph: &Hypergraph) -> Result<(), String> {
    let file = File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    let is_hgr = path.extension().is_some_and(|e| e.eq_ignore_ascii_case("hgr"));
    let result = if is_hgr {
        fpart_hypergraph::hmetis::write_hmetis(file, graph)
    } else {
        fpart_hypergraph::io::write_netlist(file, graph)
    };
    result.map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::gen::{window_circuit, WindowConfig};

    #[test]
    fn roundtrips_both_formats() {
        let dir = std::env::temp_dir().join("fpart_cli_netlist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = window_circuit(&WindowConfig::new("t", 40, 4), 1);

        let fhg = dir.join("t.fhg");
        write(&fhg, &g).unwrap();
        let back = read(&fhg).unwrap();
        assert_eq!(back.node_count(), 40);
        assert_eq!(back.terminal_count(), 4);

        let hgr = dir.join("t.hgr");
        write(&hgr, &g).unwrap();
        let back = read(&hgr).unwrap();
        assert_eq!(back.node_count(), 40);
        assert_eq!(back.terminal_count(), 0); // dropped by the format
    }

    #[test]
    fn missing_file_is_reported() {
        let err = read(Path::new("/nonexistent/zzz.fhg")).unwrap_err();
        assert!(err.contains("cannot open"));
    }
}
