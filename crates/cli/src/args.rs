//! Minimal argument parser: positionals plus `--flag [value]` options.
//!
//! Deliberately dependency-free (the workspace's external crates are
//! restricted); covers exactly what the `fpart` CLI needs.

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--key value` /
/// `--switch` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// The option names a command accepts, used to decide whether a `--flag`
/// consumes a value.
#[derive(Debug, Clone, Copy)]
pub struct Spec<'a> {
    /// Options that take a value (`--device XC3020`).
    pub valued: &'a [&'a str],
    /// Boolean switches (`--trace`).
    pub switches: &'a [&'a str],
}

impl Args {
    /// Parses raw arguments against a spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown options or missing
    /// values.
    pub fn parse(raw: &[String], spec: Spec<'_>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut iter = raw.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if spec.switches.contains(&name) {
                    args.switches.push(name.to_owned());
                } else if spec.valued.contains(&name) {
                    let value =
                        iter.next().ok_or_else(|| format!("option --{name} needs a value"))?;
                    args.options.insert(name.to_owned(), value.clone());
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                args.positionals.push(arg.clone());
            }
        }
        Ok(args)
    }

    /// Positional argument by index.
    #[must_use]
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// Value of a `--key value` option.
    #[must_use]
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parses an option value, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns a message naming the option on parse failure.
    pub fn option_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("option --{name}: cannot parse `{v}`")),
        }
    }

    /// Whether a boolean switch was given.
    #[must_use]
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_vec(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    const SPEC: Spec<'_> = Spec { valued: &["device", "delta", "seed"], switches: &["trace"] };

    #[test]
    fn parses_mixed_arguments() {
        let args =
            Args::parse(&to_vec(&["input.fhg", "--device", "XC3020", "--trace", "out.txt"]), SPEC)
                .unwrap();
        assert_eq!(args.positional(0), Some("input.fhg"));
        assert_eq!(args.positional(1), Some("out.txt"));
        assert_eq!(args.positional(2), None);
        assert_eq!(args.option("device"), Some("XC3020"));
        assert!(args.switch("trace"));
        assert!(!args.switch("verbose"));
    }

    #[test]
    fn rejects_unknown_option() {
        let err = Args::parse(&to_vec(&["--bogus"]), SPEC).unwrap_err();
        assert!(err.contains("--bogus"));
    }

    #[test]
    fn rejects_missing_value() {
        let err = Args::parse(&to_vec(&["--device"]), SPEC).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn option_parsed_with_default() {
        let args = Args::parse(&to_vec(&["--delta", "0.8"]), SPEC).unwrap();
        assert_eq!(args.option_parsed("delta", 0.9f64).unwrap(), 0.8);
        assert_eq!(args.option_parsed("seed", 7u64).unwrap(), 7);
        let bad = Args::parse(&to_vec(&["--delta", "abc"]), SPEC).unwrap();
        assert!(bad.option_parsed("delta", 0.9f64).is_err());
    }
}
