//! `fpart` — command-line front end for the FPART multi-way FPGA
//! netlist partitioner.
//!
//! ```text
//! fpart partition <netlist> --device XC3020 [--delta 0.9] [--method fpart|kway|flow|naive]
//!                 [--s-max N --t-max N] [--output assignment.txt] [--trace]
//! fpart stats <netlist>
//! fpart gen <kind> --nodes N --terminals T [--seed S] [--circuit NAME --tech xc3000] --output FILE
//! fpart convert <input> <output>
//! ```
//!
//! Netlist files use the `.fhg` text format, or hMETIS `.hgr` when the
//! extension is `.hgr`.

mod args;
mod commands;
mod error;
mod netlist_file;
mod report;
mod serve;

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

use error::CliError;

/// Process-wide interrupt flag, set by the SIGINT/SIGTERM handler and
/// polled by long-running commands through a `fpart_core::CancelToken`.
pub(crate) static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// The signal number that set [`INTERRUPTED`] (0 when none arrived):
/// distinguishes exit 130 (SIGINT) from exit 143 (SIGTERM).
pub(crate) static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

/// Installs SIGINT and SIGTERM handlers that only set [`INTERRUPTED`]
/// (recording which signal in [`LAST_SIGNAL`]): the partitioner then
/// stops at the next pass/peel boundary and the CLI flushes its outputs
/// — including a final checkpoint when `--checkpoint` is active — and
/// exits 130/143 instead of dying mid-write. Uses the raw C `signal`
/// API to stay dependency-free.
#[cfg(unix)]
pub(crate) fn install_signal_handlers() {
    extern "C" fn on_signal(signum: i32) {
        LAST_SIGNAL.store(signum, Ordering::SeqCst);
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// Non-Unix platforms: no handler; `--deadline-ms` still works.
#[cfg(not(unix))]
pub(crate) fn install_signal_handlers() {}

/// Whether a SIGINT/SIGTERM arrived at any point during this run. Even
/// when the best restart finished before the signal (so the winning
/// outcome's completion reads `complete`), the process must still exit
/// 130/143 so scripts can tell the search was cut short.
pub(crate) fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// The error a cancelled run maps to: exit 143 when SIGTERM caused the
/// cancellation, exit 130 otherwise (SIGINT).
pub(crate) fn signal_exit_error() -> CliError {
    if LAST_SIGNAL.load(Ordering::SeqCst) == 15 {
        CliError::Terminated
    } else {
        CliError::Interrupted
    }
}

const USAGE: &str = "\
fpart — multi-way FPGA netlist partitioning (FPART, DATE 1999)

USAGE:
  fpart partition <netlist> --device <NAME> [options]   partition onto devices
  fpart stats <netlist>                                 netlist statistics
  fpart gen <kind> [options]                            generate a synthetic netlist
  fpart convert <input> <output>                        convert between .fhg/.hgr/.blif
  fpart verify <netlist> <assignment> --device <NAME>   check an assignment file
  fpart eco <netlist> --assignment <FILE> --edits <FILE> --device <NAME>
                                                        repair a partition after edits
  fpart report --metrics <FILE|->                       render a metrics file as a
                                                        phase-time report
  fpart serve [--listen <SOCKET>] [options]             long-running partition server
                                                        (JSON-Lines over stdio or a
                                                        Unix socket)
  fpart devices                                         list the device catalog

PARTITION OPTIONS:
  --device <NAME>     device from the catalog (see `fpart devices`)
  --s-max N --t-max N custom device instead of --device
  --delta <F>         filling ratio (default 0.9)
  --method <M>        fpart (default) | kway | flow | naive | multilevel | direct
  --multilevel        n-level multilevel mode: coarsen by heavy-edge matching to
                      a size floor, FPART the coarsest graph, boundary-only FM
                      at every uncoarsening level (same as --method multilevel)
  --coarsen-floor <N> stop coarsening at this node count (default 256)
  --restarts <N>      independent FPART runs with consecutive seeds; best wins (default 1)
  --threads <N>       total worker budget, shared by parallel restarts and the
                      intra-run stages of each run (multilevel matching, net
                      projection, boundary pair refinement); the result is
                      identical for every thread count, only wall time
                      changes (default: $FPART_THREADS if set, else 1)
  --deadline-ms <N>   wall-clock budget; on expiry the best solution found
                      so far is returned with completion `deadline_expired`
  --max-passes <N>    FM pass budget per run; on exhaustion completion is
                      `degraded` (the partition is still verified output)
  --output <FILE>     write `node block` assignment lines
  --trace             print the improvement schedule while running
  --trace-json <FILE> stream driver events as JSON Lines (needs --restarts 1;
                      `-` writes to stdout)
  --trace-chrome <FILE>
                      write the span profile as a Chrome trace-event array
                      (open in Perfetto or chrome://tracing; one synthetic
                      tid per restart/worker lane; `-` writes to stdout)
  --progress          print throttled heartbeat lines (phase, passes, moves,
                      cut, budget remaining) on stderr while running
                      (needs --restarts 1)
  --metrics <FILE>    write engine counters/timings/span profile as JSON
                      (totals + per-restart registries, schema-versioned;
                      `-` writes to stdout)
  --write-assignment <FILE>
                      write the versioned assignment format
                      (`#%fpart-assignment v1 blocks <k>` header; the
                      format `fpart eco --assignment` expects)
  --cache             enable the fingerprint-keyed memo store (hierarchy
                      cache + solution memo) for this process; results
                      are bit-identical with or without it

DURABILITY OPTIONS (partition, --method fpart/multilevel):
  --checkpoint <FILE> maintain a crash-safe snapshot of completed
                      restarts (written atomically on a dedicated
                      thread; a SIGKILL never leaves a torn file)
  --checkpoint-interval-ms <N>
                      throttle checkpoint writes to one per interval
                      (default 1000; the final state always flushes)
  --resume <FILE>     restore completed restarts from a checkpoint and
                      run only the missing ones; the final result is
                      bit-identical to an uninterrupted run (the file
                      must match this run's netlist/device/config
                      fingerprint and schema version)

INPUT LIMIT OPTIONS (all netlist/edit readers; defaults in parentheses):
  --max-nodes <N>     node records (10000000)
  --max-nets <N>      net records (10000000)
  --max-pins <N>      total pins (200000000)
  --max-name-len <N>  name length in bytes (1024)
  --max-line-len <N>  line length in bytes (1048576)
                      violations are typed errors with line and column,
                      checked before any proportional allocation
  --max-memory-mb <N> estimated-byte cap for the multilevel hierarchy;
                      coarsening stops early and the run completes
                      `degraded` instead of exhausting memory

ECO OPTIONS:
  --assignment <FILE> previous assignment of the *pre-edit* netlist
                      (plain or versioned format)
  --edits <FILE>      JSON-Lines edit script (add_node, remove_node,
                      resize_node, add_net, remove_net, connect_pin,
                      disconnect_pin)
  --churn-threshold <F>
                      fall back to full repartitioning when the edit
                      touches more than this fraction of cells (default 0.15)
  plus --device/--s-max/--t-max/--delta, --restarts, --threads,
  --deadline-ms, --max-passes, --metrics, --output, --write-assignment,
  --cache

SERVE OPTIONS:
  --listen <SOCKET>   accept connections on a Unix domain socket instead
                      of speaking the protocol over stdio
  --threads <N>       total worker budget shared by all requests
                      (default: $FPART_THREADS if set, else 1)
  --queue <N>         per-session queued requests before `busy` (default 4)
  --heartbeat-ms <N>  progress event throttle (default 200)
  --no-cache          disable the fingerprint-keyed memo store (hierarchy
                      cache + solution memo; results are bit-identical
                      either way, so this mainly serves A/B timing)
  plus the input limit options; --max-line-len also bounds request lines
  Protocol: one JSON object per line with an `id` and a `cmd` of
  load | partition | eco | query | cancel | shutdown; every reply names
  its request id and is either ok/result, ok:false/error (typed code),
  or an interim queued/progress event. See DESIGN.md, Partition server.

REPORT OPTIONS:
  --metrics <FILE|->  metrics JSON written by --metrics (`-` reads stdin);
                      also accepted as a positional argument
  --trace-json <FILE> also summarize a JSON-Lines event stream
  --top <N>           rows in the hot-phase table (default 5)

GEN KINDS AND OPTIONS:
  rent | window | layered | clustered | mcnc
  --nodes N --terminals N --seed S        (rent, window, clustered, layered)
  --circuit NAME --tech xc2000|xc3000     (mcnc)
  --output <FILE>                         output netlist (.fhg or .hgr)

EXIT CODES:
  0    success
  1    runtime failure (no feasible partition, verification failed, ...)
  2    usage or input errors (bad flags, malformed netlists)
  130  interrupted by SIGINT after printing the best-so-far result
  143  terminated by SIGTERM after flushing outputs and any checkpoint
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &raw[1..];
    let result = match command {
        "partition" => commands::partition(rest),
        "stats" => commands::stats(rest),
        "gen" => commands::generate(rest),
        "convert" => commands::convert(rest),
        "verify" => commands::verify(rest),
        "eco" => commands::eco(rest),
        "report" => report::report(rest),
        "serve" => serve::serve(rest),
        "devices" => commands::devices(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`\n\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => error.report(),
    }
}
