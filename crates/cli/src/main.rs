//! `fpart` — command-line front end for the FPART multi-way FPGA
//! netlist partitioner.
//!
//! ```text
//! fpart partition <netlist> --device XC3020 [--delta 0.9] [--method fpart|kway|flow|naive]
//!                 [--s-max N --t-max N] [--output assignment.txt] [--trace]
//! fpart stats <netlist>
//! fpart gen <kind> --nodes N --terminals T [--seed S] [--circuit NAME --tech xc3000] --output FILE
//! fpart convert <input> <output>
//! ```
//!
//! Netlist files use the `.fhg` text format, or hMETIS `.hgr` when the
//! extension is `.hgr`.

mod args;
mod commands;
mod netlist_file;

use std::process::ExitCode;

const USAGE: &str = "\
fpart — multi-way FPGA netlist partitioning (FPART, DATE 1999)

USAGE:
  fpart partition <netlist> --device <NAME> [options]   partition onto devices
  fpart stats <netlist>                                 netlist statistics
  fpart gen <kind> [options]                            generate a synthetic netlist
  fpart convert <input> <output>                        convert between .fhg/.hgr/.blif
  fpart verify <netlist> <assignment> --device <NAME>   check an assignment file
  fpart devices                                         list the device catalog

PARTITION OPTIONS:
  --device <NAME>     device from the catalog (see `fpart devices`)
  --s-max N --t-max N custom device instead of --device
  --delta <F>         filling ratio (default 0.9)
  --method <M>        fpart (default) | kway | flow | naive | multilevel | direct
  --restarts <N>      independent FPART runs with consecutive seeds; best wins (default 1)
  --threads <N>       worker threads for --restarts; the result is identical
                      for every thread count, only wall time changes (default 1)
  --output <FILE>     write `node block` assignment lines
  --trace             print the improvement schedule while running
  --trace-json <FILE> stream driver events as JSON Lines (needs --restarts 1)
  --metrics <FILE>    write engine counters/timings as JSON (totals +
                      per-restart registries, schema-versioned)

GEN KINDS AND OPTIONS:
  rent | window | layered | clustered | mcnc
  --nodes N --terminals N --seed S        (rent, window, clustered, layered)
  --circuit NAME --tech xc2000|xc3000     (mcnc)
  --output <FILE>                         output netlist (.fhg or .hgr)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &raw[1..];
    let result = match command {
        "partition" => commands::partition(rest),
        "stats" => commands::stats(rest),
        "gen" => commands::generate(rest),
        "convert" => commands::convert(rest),
        "verify" => commands::verify(rest),
        "devices" => commands::devices(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
