//! `fpart report` — renders a `--metrics` document (and optionally a
//! `--trace-json` stream) as a human-readable phase-time report.
//!
//! The span records written under `totals.spans` form a forest: each
//! record carries its parent phase kind, so the report reconstructs the
//! phase tree, attributes self time against the run's wall clock
//! (`elapsed_ms`), and lists the hottest phases. Because span *wall
//! times* are excluded from the engine's determinism contract, this
//! command is purely diagnostic — two runs of the same partition can
//! legitimately report different milliseconds over an identical tree
//! shape.

use std::io::Read as _;

use crate::args::{Args, Spec};
use crate::error::CliError;
use fpart_core::json::Json;

/// One span record row from `totals.spans`.
struct Row {
    kind: String,
    level: u64,
    parent: Option<String>,
    count: u64,
    total_ns: u64,
    self_ns: u64,
}

impl Row {
    /// Label shown in the tree: the kind, plus ` L<level>` when the
    /// document distinguishes levels for this kind.
    fn label(&self, leveled: bool) -> String {
        if leveled {
            format!("{} L{}", self.kind, self.level)
        } else {
            self.kind.clone()
        }
    }
}

/// `fpart report --metrics <FILE|-> [--trace-json FILE] [--top N]`
pub fn report(raw: &[String]) -> Result<(), CliError> {
    let spec = Spec { valued: &["metrics", "trace-json", "top"], switches: &[] };
    let args = Args::parse(raw, spec).map_err(CliError::Usage)?;
    let metrics_file = args.option("metrics").or_else(|| args.positional(0)).ok_or_else(|| {
        CliError::Usage("report needs --metrics <FILE|-> (or a positional)".into())
    })?;
    let top: usize = args.option_parsed("top", 5).map_err(CliError::Usage)?;

    let text = read_input(metrics_file)?;
    // Files must parse exactly; stdin tolerates trailing text so a
    // piped `fpart partition --metrics -` (whose human summary follows
    // the JSON on the same stream) reads back directly.
    let doc = if metrics_file == "-" { Json::parse_prefix(&text) } else { Json::parse(&text) }
        .map_err(|e| CliError::Input(format!("{metrics_file}: invalid JSON: {e}")))?;
    let schema = doc.get("schema_version").and_then(Json::as_u64);
    if schema != Some(u64::from(fpart_core::SCHEMA_VERSION)) {
        return Err(CliError::Input(format!(
            "{metrics_file}: unsupported schema_version {} (this build reads {})",
            schema.map_or_else(|| "<missing>".to_owned(), |v| v.to_string()),
            fpart_core::SCHEMA_VERSION
        )));
    }

    print!("{}", render(&doc, top));

    if let Some(trace_file) = args.option("trace-json") {
        print!("{}", render_trace_summary(trace_file)?);
    }
    Ok(())
}

/// Reads a report input: stdin for `-`, a file otherwise.
fn read_input(path: &str) -> Result<String, CliError> {
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| CliError::Input(format!("cannot read stdin: {e}")))?;
        return Ok(text);
    }
    std::fs::read_to_string(path).map_err(|e| CliError::Input(format!("cannot read {path}: {e}")))
}

/// Renders the whole report for a parsed metrics document. Split from
/// the command so tests can pin the exact output for a fixed document.
fn render(doc: &Json, top: usize) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let restarts = doc.get("restarts").and_then(Json::as_u64).unwrap_or(0);
    let threads = doc.get("threads").and_then(Json::as_u64).unwrap_or(0);
    let completion = doc.get("completion").and_then(Json::as_str).unwrap_or("<unknown>").to_owned();
    let wall_ms = doc.get("elapsed_ms").and_then(Json::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "run: {restarts} restart(s) x {threads} thread(s), completion {completion}, \
         wall {wall_ms} ms"
    );
    if let Some(q) = doc.get("quality") {
        let field = |k: &str| q.get(k).and_then(Json::as_u64);
        if let (Some(devices), Some(lb), Some(cut)) =
            (field("device_count"), field("lower_bound"), field("cut"))
        {
            let feasible = matches!(q.get("feasible"), Some(Json::Bool(true)));
            let _ = writeln!(
                out,
                "quality: {devices} device(s) (lower bound {lb}), feasible {feasible}, \
                 cut {cut}"
            );
        }
    }
    // Fingerprint-keyed memoization activity (schema 10); omitted
    // entirely for runs without a memo store, so old-style reports are
    // byte-identical.
    if let Some(c) = doc.get("totals").and_then(|t| t.get("counters")) {
        let count = |k: &str| c.get(k).and_then(Json::as_u64).unwrap_or(0);
        let hits = count("hierarchy_cache_hits");
        let misses = count("hierarchy_cache_misses");
        let evictions = count("hierarchy_cache_evictions");
        let warm = count("memo_warm_starts");
        if hits + misses + evictions + warm > 0 {
            let _ = writeln!(
                out,
                "cache: hierarchy {hits} hit(s) / {misses} miss(es) / {evictions} \
                 eviction(s), {warm} warm-started restart(s)"
            );
        }
    }

    let rows = span_rows(doc);
    if rows.is_empty() {
        out.push_str("no span records (run with --metrics on an instrumented build)\n");
        return out;
    }

    // Self-time coverage: pair jobs run on worker lanes whose wall time
    // overlaps the refine level that spawned them, so both the pair-job
    // rows and their children are excluded from the coverage sum to
    // avoid double counting.
    let covered_ns: u64 = rows
        .iter()
        .filter(|r| r.kind != "pair_job" && r.parent.as_deref() != Some("pair_job"))
        .map(|r| r.self_ns)
        .sum();
    let covered_ms = covered_ns as f64 / 1e6;
    let coverage = percent(covered_ms, wall_ms as f64);
    let _ = writeln!(
        out,
        "self-time coverage: {coverage:.1}% of wall ({covered_ms:.3} ms attributed, \
         pair-job lanes excluded)"
    );

    // Kinds that appear with more than one level get an L<level> suffix.
    let leveled: Vec<String> = rows
        .iter()
        .filter(|r| r.level > 0 || rows.iter().any(|o| o.kind == r.kind && o.level != r.level))
        .map(|r| r.kind.clone())
        .collect();
    let is_leveled = |kind: &str| leveled.iter().any(|k| k == kind);

    out.push_str("\nphase tree (self time, % of wall):\n");
    let mut visited = vec![false; rows.len()];
    let mut path: Vec<String> = Vec::new();
    render_children(&rows, None, 1, &mut visited, &mut path, wall_ms as f64, &is_leveled, &mut out);
    // Records whose parent kind never reached the roots (defensive:
    // should not happen with the engine's own documents).
    if visited.iter().any(|v| !v) {
        out.push_str("  (detached)\n");
        for (i, row) in rows.iter().enumerate() {
            if !visited[i] {
                push_row(row, 2, wall_ms as f64, &is_leveled, &mut out);
            }
        }
    }

    let mut hottest: Vec<&Row> = rows.iter().collect();
    hottest.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.kind.cmp(&b.kind)));
    let shown = top.min(hottest.len());
    let _ = writeln!(out, "\nhot phases (top {shown} by self time):");
    for (i, row) in hottest.iter().take(shown).enumerate() {
        let label = row.label(is_leveled(&row.kind));
        let self_ms = row.self_ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "  {:>2}. {label:<24} self {self_ms:>10.3} ms  {:>5.1}%",
            i + 1,
            percent(self_ms, wall_ms as f64)
        );
    }
    out
}

/// Extracts the span rows from `totals.spans`.
fn span_rows(doc: &Json) -> Vec<Row> {
    let Some(spans) = doc.get("totals").and_then(|t| t.get("spans")).and_then(Json::as_array)
    else {
        return Vec::new();
    };
    spans
        .iter()
        .filter_map(|s| {
            Some(Row {
                kind: s.get("kind")?.as_str()?.to_owned(),
                level: s.get("level").and_then(Json::as_u64).unwrap_or(0),
                parent: s.get("parent").and_then(Json::as_str).map(str::to_owned),
                count: s.get("count").and_then(Json::as_u64).unwrap_or(0),
                total_ns: s.get("total_ns").and_then(Json::as_u64).unwrap_or(0),
                self_ns: s.get("self_ns").and_then(Json::as_u64).unwrap_or(0),
            })
        })
        .collect()
}

/// Prints every not-yet-visited row whose parent is `parent`, grouped by
/// kind in first-seen order, then recurses into each kind's children.
/// `path` guards against parent cycles in hostile documents.
#[allow(clippy::too_many_arguments)]
fn render_children(
    rows: &[Row],
    parent: Option<&str>,
    depth: usize,
    visited: &mut [bool],
    path: &mut Vec<String>,
    wall_ms: f64,
    is_leveled: &dyn Fn(&str) -> bool,
    out: &mut String,
) {
    let mut kinds: Vec<&str> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        if !visited[i] && row.parent.as_deref() == parent && !kinds.contains(&row.kind.as_str()) {
            kinds.push(&row.kind);
        }
    }
    for kind in kinds {
        let kind = kind.to_owned();
        for (i, row) in rows.iter().enumerate() {
            if !visited[i] && row.kind == kind && row.parent.as_deref() == parent {
                visited[i] = true;
                push_row(row, depth, wall_ms, is_leveled, out);
            }
        }
        if path.contains(&kind) {
            continue;
        }
        path.push(kind.clone());
        render_children(rows, Some(&kind), depth + 1, visited, path, wall_ms, is_leveled, out);
        path.pop();
    }
}

/// Appends one formatted tree row.
fn push_row(
    row: &Row,
    depth: usize,
    wall_ms: f64,
    is_leveled: &dyn Fn(&str) -> bool,
    out: &mut String,
) {
    use std::fmt::Write as _;

    let label = format!("{}{}", "  ".repeat(depth), row.label(is_leveled(&row.kind)));
    let total_ms = row.total_ns as f64 / 1e6;
    let self_ms = row.self_ns as f64 / 1e6;
    let _ = writeln!(
        out,
        "{label:<28} count {:>6}  total {total_ms:>10.3} ms  self {self_ms:>10.3} ms  {:>5.1}%",
        row.count,
        percent(self_ms, wall_ms)
    );
}

/// `part` as a percentage of `whole_ms`, 0 when the wall time is zero.
fn percent(part_ms: f64, whole_ms: f64) -> f64 {
    if whole_ms > 0.0 {
        part_ms / whole_ms * 100.0
    } else {
        0.0
    }
}

/// Summarizes a `--trace-json` JSON-Lines stream: total events plus a
/// per-class breakdown in first-seen order.
fn render_trace_summary(path: &str) -> Result<String, CliError> {
    use std::fmt::Write as _;

    let text = read_input(path)?;
    let mut total = 0u64;
    let mut by_class: Vec<(String, u64)> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Json::parse(line)
            .map_err(|e| CliError::Input(format!("{path}:{}: invalid JSON: {e}", n + 1)))?;
        let class = event.get("event").and_then(Json::as_str).unwrap_or("<unknown>").to_owned();
        match by_class.iter_mut().find(|(k, _)| *k == class) {
            Some((_, count)) => *count += 1,
            None => by_class.push((class, 1)),
        }
        total += 1;
    }
    let mut out = format!("\ntrace: {total} event(s)");
    for (class, count) in &by_class {
        let _ = write!(out, ", {class} {count}");
    }
    out.push('\n');
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pinned metrics document exercising nesting, leveled kinds, the
    /// pair-job coverage exclusion, and the hot-phase table.
    const FIXTURE: &str = r#"{"schema_version": 8, "restarts": 1, "threads": 2,
        "elapsed_ms": 100, "completion": "complete",
        "quality": {"device_count": 3, "lower_bound": 3, "feasible": true, "cut": 17},
        "totals": {"spans": [
            {"kind": "coarsen_level", "level": 0, "parent": null, "count": 1,
             "total_ns": 20000000, "self_ns": 20000000},
            {"kind": "coarsen_level", "level": 1, "parent": null, "count": 1,
             "total_ns": 10000000, "self_ns": 10000000},
            {"kind": "initial", "level": 0, "parent": null, "count": 1,
             "total_ns": 30000000, "self_ns": 25000000},
            {"kind": "improve", "level": 0, "parent": "initial", "count": 4,
             "total_ns": 5000000, "self_ns": 5000000},
            {"kind": "refine_level", "level": 1, "parent": null, "count": 1,
             "total_ns": 40000000, "self_ns": 40000000},
            {"kind": "pair_job", "level": 0, "parent": "refine_level", "count": 6,
             "total_ns": 35000000, "self_ns": 30000000},
            {"kind": "improve", "level": 0, "parent": "pair_job", "count": 6,
             "total_ns": 5000000, "self_ns": 5000000}
        ]}}"#;

    #[test]
    fn golden_report_for_pinned_document() {
        let doc = Json::parse(FIXTURE).unwrap();
        let text = render(&doc, 3);
        let expected = "\
run: 1 restart(s) x 2 thread(s), completion complete, wall 100 ms
quality: 3 device(s) (lower bound 3), feasible true, cut 17
self-time coverage: 100.0% of wall (100.000 ms attributed, pair-job lanes excluded)

phase tree (self time, % of wall):
  coarsen_level L0           count      1  total     20.000 ms  self     20.000 ms   20.0%
  coarsen_level L1           count      1  total     10.000 ms  self     10.000 ms   10.0%
  initial                    count      1  total     30.000 ms  self     25.000 ms   25.0%
    improve                  count      4  total      5.000 ms  self      5.000 ms    5.0%
  refine_level L1            count      1  total     40.000 ms  self     40.000 ms   40.0%
    pair_job                 count      6  total     35.000 ms  self     30.000 ms   30.0%
      improve                count      6  total      5.000 ms  self      5.000 ms    5.0%

hot phases (top 3 by self time):
   1. refine_level L1          self     40.000 ms   40.0%
   2. pair_job                 self     30.000 ms   30.0%
   3. initial                  self     25.000 ms   25.0%
";
        assert_eq!(text, expected);
    }

    #[test]
    fn coverage_excludes_pair_job_lanes() {
        let doc = Json::parse(FIXTURE).unwrap();
        let text = render(&doc, 1);
        // 20 + 10 + 25 + 5 (improve under initial) + 40 = 100 ms; the
        // 30 ms pair_job self and its 5 ms improve child are excluded.
        assert!(text.contains("self-time coverage: 100.0%"), "{text}");
    }

    #[test]
    fn cache_line_renders_only_when_counters_are_live() {
        // The pinned fixture has no counters object: no cache line.
        let doc = Json::parse(FIXTURE).unwrap();
        assert!(!render(&doc, 3).contains("cache:"));
        let doc = Json::parse(
            r#"{"schema_version": 10, "elapsed_ms": 10, "totals": {
                "counters": {"hierarchy_cache_hits": 3, "hierarchy_cache_misses": 1,
                             "hierarchy_cache_evictions": 0, "memo_warm_starts": 2},
                "spans": []}}"#,
        )
        .unwrap();
        let text = render(&doc, 3);
        assert!(
            text.contains(
                "cache: hierarchy 3 hit(s) / 1 miss(es) / 0 eviction(s), \
                 2 warm-started restart(s)"
            ),
            "{text}"
        );
        // All-zero counters (cache off) also stay silent.
        let doc = Json::parse(
            r#"{"schema_version": 10, "elapsed_ms": 10, "totals": {
                "counters": {"hierarchy_cache_hits": 0, "moves_applied": 9}, "spans": []}}"#,
        )
        .unwrap();
        assert!(!render(&doc, 3).contains("cache:"));
    }

    #[test]
    fn missing_spans_degrade_gracefully() {
        let doc = Json::parse(r#"{"schema_version": 8, "totals": {"spans": []}}"#).unwrap();
        let text = render(&doc, 5);
        assert!(text.contains("no span records"), "{text}");
    }

    #[test]
    fn cyclic_parents_terminate() {
        // Hostile document: a <-> b parent cycle must not recurse
        // forever; both rows still appear (one as detached or nested).
        let doc = Json::parse(
            r#"{"schema_version": 8, "elapsed_ms": 10, "totals": {"spans": [
                {"kind": "a", "level": 0, "parent": "b", "count": 1,
                 "total_ns": 1000000, "self_ns": 1000000},
                {"kind": "b", "level": 0, "parent": "a", "count": 1,
                 "total_ns": 1000000, "self_ns": 1000000}
            ]}}"#,
        )
        .unwrap();
        let text = render(&doc, 5);
        assert!(text.contains(" a "), "{text}");
        assert!(text.contains(" b "), "{text}");
    }
}
