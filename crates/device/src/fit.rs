//! Heterogeneous device fitting: assign each partition block the
//! cheapest catalog device it fits (the total-device-cost objective of
//! Kuznar/Brglez/Zajc, DAC'94, which the FPART paper cites as related
//! work).
//!
//! Prices are era-plausible *relative* figures (larger parts cost
//! disproportionately more, as they did); absolute values are synthetic
//! and only the ordering matters for the experiments.

use crate::{BlockUsage, Device};

/// A catalog device with a relative price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricedDevice {
    /// The device.
    pub device: Device,
    /// Relative price (arbitrary units; only ratios are meaningful).
    pub price: f64,
}

/// A per-block device assignment with its total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Chosen device per block, aligned with the input usages.
    pub per_block: Vec<PricedDevice>,
    /// Sum of the chosen devices' prices.
    pub total_price: f64,
}

impl FitReport {
    /// Number of distinct device types used.
    #[must_use]
    pub fn distinct_devices(&self) -> usize {
        let mut names: Vec<&str> = self.per_block.iter().map(|p| p.device.name).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

/// An era-plausible relative price list for the XC2000/XC3000 catalog:
/// price grows superlinearly with capacity (die size and yield).
#[must_use]
pub fn default_price_list() -> Vec<PricedDevice> {
    [
        (Device::XC2064, 1.0),
        (Device::XC2018, 1.5),
        (Device::XC3020, 1.3),
        (Device::XC3030, 2.0),
        (Device::XC3042, 3.0),
        (Device::XC3064, 5.0),
        (Device::XC3090, 8.5),
    ]
    .into_iter()
    .map(|(device, price)| PricedDevice { device, price })
    .collect()
}

/// The cheapest device of `list` whose constraints (at filling ratio
/// `delta`) accommodate `usage`; ties broken toward the smaller part.
#[must_use]
pub fn cheapest_fit(usage: BlockUsage, delta: f64, list: &[PricedDevice]) -> Option<PricedDevice> {
    list.iter()
        .filter(|p| p.device.constraints(delta).fits(usage.size, usage.terminals))
        .min_by(|a, b| a.price.total_cmp(&b.price).then_with(|| a.device.s_ds.cmp(&b.device.s_ds)))
        .copied()
}

/// Fits every block of a partition to its cheapest device. Returns
/// `None` when some block fits no catalog device.
#[must_use]
pub fn fit_blocks(usages: &[BlockUsage], delta: f64, list: &[PricedDevice]) -> Option<FitReport> {
    let per_block: Option<Vec<PricedDevice>> =
        usages.iter().map(|&usage| cheapest_fit(usage, delta, list)).collect();
    let per_block = per_block?;
    let total_price = per_block.iter().map(|p| p.price).sum();
    Some(FitReport { per_block, total_price })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheapest_fit_prefers_cheap_parts() {
        let list = default_price_list();
        // A tiny block fits everything; XC2064 is the cheapest.
        let fit = cheapest_fit(BlockUsage::new(10, 10), 1.0, &list).unwrap();
        assert_eq!(fit.device, Device::XC2064);
        // 60 IOBs rule out the XC2064 (58); the XC3020 is next-cheapest.
        let fit = cheapest_fit(BlockUsage::new(10, 60), 1.0, &list).unwrap();
        assert_eq!(fit.device, Device::XC3020);
        // A 300-CLB block needs the XC3090.
        let fit = cheapest_fit(BlockUsage::new(300, 10), 1.0, &list).unwrap();
        assert_eq!(fit.device, Device::XC3090);
    }

    #[test]
    fn filling_ratio_is_applied() {
        let list = default_price_list();
        // 64 cells fit the XC2064 only at δ = 1.0.
        assert_eq!(
            cheapest_fit(BlockUsage::new(64, 10), 1.0, &list).unwrap().device,
            Device::XC2064
        );
        let at_90 = cheapest_fit(BlockUsage::new(64, 10), 0.9, &list).unwrap();
        assert_ne!(at_90.device, Device::XC2064);
    }

    #[test]
    fn oversized_block_fits_nothing() {
        let list = default_price_list();
        assert_eq!(cheapest_fit(BlockUsage::new(1000, 10), 1.0, &list), None);
        assert_eq!(cheapest_fit(BlockUsage::new(10, 500), 1.0, &list), None);
    }

    #[test]
    fn fit_blocks_totals_and_distinct_count() {
        let list = default_price_list();
        let usages = [
            BlockUsage::new(10, 10),  // XC2064 (1.0)
            BlockUsage::new(120, 70), // needs ≥120 CLB, ≥70 IOB → XC3042 (3.0)
            BlockUsage::new(10, 10),  // XC2064 (1.0)
        ];
        let report = fit_blocks(&usages, 1.0, &list).unwrap();
        assert_eq!(report.per_block[0].device, Device::XC2064);
        assert_eq!(report.per_block[1].device, Device::XC3042);
        assert!((report.total_price - 5.0).abs() < 1e-12);
        assert_eq!(report.distinct_devices(), 2);
    }

    #[test]
    fn fit_blocks_none_on_unfittable() {
        let list = default_price_list();
        assert!(fit_blocks(&[BlockUsage::new(9999, 1)], 1.0, &list).is_none());
    }

    #[test]
    fn empty_partition_costs_nothing() {
        let report = fit_blocks(&[], 1.0, &default_price_list()).unwrap();
        assert_eq!(report.total_price, 0.0);
        assert_eq!(report.distinct_devices(), 0);
    }
}
