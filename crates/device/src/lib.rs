//! FPGA device models for multi-way netlist partitioning.
//!
//! A device is characterized — exactly as in §2 of the FPART paper — by a
//! data-sheet logic capacity `S_ds` (CLBs) and a terminal count `T_MAX`
//! (IOBs). The effective size constraint is `S_MAX = ⌊S_ds · δ⌋` where `δ`
//! is the user's *filling ratio* (commonly 0.9, to leave slack for the
//! vendor place-and-route).
//!
//! The crate provides:
//!
//! * [`Device`] — data-sheet description plus a catalog of the Xilinx
//!   XC2000/XC3000-era parts used in the paper's evaluation;
//! * [`DeviceConstraints`] — the `(S_MAX, T_MAX)` pair actually enforced
//!   during partitioning, with feasibility predicates;
//! * [`BlockUsage`] — a block's `(size, terminal)` occupancy, the point in
//!   the 2-D feasibility plane of the paper's Figure 2;
//! * [`lower_bound`] — the theoretical minimum device count
//!   `M = MAX(⌈S₀/S_MAX⌉, ⌈|Y₀|/T_MAX⌉)`.
//!
//! # Example
//!
//! ```
//! use fpart_device::{Device, DeviceConstraints};
//!
//! let dev = Device::XC3020;
//! let cons = dev.constraints(0.9);
//! assert_eq!(cons.s_max, 57); // ⌊64 · 0.9⌋
//! assert_eq!(cons.t_max, 64);
//! assert!(cons.fits(57, 64));
//! assert!(!cons.fits(58, 1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fit;

use std::fmt;

use fpart_hypergraph::Hypergraph;

/// Data-sheet description of an FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Device {
    /// Part name, e.g. `"XC3020"`.
    pub name: &'static str,
    /// Data-sheet logic capacity in CLBs (`S_ds`).
    pub s_ds: u64,
    /// Number of user I/O blocks (`T_MAX`).
    pub t_max: usize,
}

impl Device {
    /// Xilinx XC2064: 64 CLBs, 58 IOBs (XC2000 family).
    pub const XC2064: Device = Device { name: "XC2064", s_ds: 64, t_max: 58 };
    /// Xilinx XC2018: 100 CLBs, 74 IOBs (XC2000 family).
    pub const XC2018: Device = Device { name: "XC2018", s_ds: 100, t_max: 74 };
    /// Xilinx XC3020: 64 CLBs, 64 IOBs.
    pub const XC3020: Device = Device { name: "XC3020", s_ds: 64, t_max: 64 };
    /// Xilinx XC3030: 100 CLBs, 80 IOBs.
    pub const XC3030: Device = Device { name: "XC3030", s_ds: 100, t_max: 80 };
    /// Xilinx XC3042: 144 CLBs, 96 IOBs.
    pub const XC3042: Device = Device { name: "XC3042", s_ds: 144, t_max: 96 };
    /// Xilinx XC3064: 224 CLBs, 120 IOBs.
    pub const XC3064: Device = Device { name: "XC3064", s_ds: 224, t_max: 120 };
    /// Xilinx XC3090: 320 CLBs, 144 IOBs.
    pub const XC3090: Device = Device { name: "XC3090", s_ds: 320, t_max: 144 };

    /// The devices used in the paper's evaluation (Tables 2–5), in table
    /// order: XC3020, XC3042, XC3090, XC2064.
    #[must_use]
    pub fn paper_catalog() -> [Device; 4] {
        [Device::XC3020, Device::XC3042, Device::XC3090, Device::XC2064]
    }

    /// The full catalog known to this crate.
    #[must_use]
    pub fn catalog() -> [Device; 7] {
        [
            Device::XC2064,
            Device::XC2018,
            Device::XC3020,
            Device::XC3030,
            Device::XC3042,
            Device::XC3064,
            Device::XC3090,
        ]
    }

    /// Looks a device up by part name (case-sensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Device> {
        Device::catalog().into_iter().find(|d| d.name == name)
    }

    /// Returns the constraints enforced during partitioning for the given
    /// filling ratio `δ`: `S_MAX = ⌊S_ds · δ⌋`, `T_MAX` unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1]` — a filling ratio above 1.0
    /// would claim more CLBs than the part has.
    #[must_use]
    pub fn constraints(&self, delta: f64) -> DeviceConstraints {
        assert!(delta > 0.0 && delta <= 1.0, "filling ratio must be in (0, 1], got {delta}");
        let permille = (delta * 1000.0).round() as u64;
        DeviceConstraints {
            s_max: self.s_ds * permille / 1000,
            t_max: self.t_max,
            s_max_permille: self.s_ds * permille,
        }
    }

    /// Returns whether the part belongs to the XC2000 family (as opposed
    /// to XC3000), which selects the Table 1 technology mapping.
    #[must_use]
    pub fn is_xc2000_family(&self) -> bool {
        self.name.starts_with("XC2")
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} CLB, {} IOB)", self.name, self.s_ds, self.t_max)
    }
}

/// The `(S_MAX, T_MAX)` pair enforced on every partition block.
///
/// `s_max` is the *integer* per-block capacity (node sizes are integers, so
/// `S_i ≤ S_ds·δ ⟺ S_i ≤ ⌊S_ds·δ⌋`). The paper's theoretical lower bound
/// `M`, however, divides by the *exact* `S_ds·δ` (e.g. s13207 on XC3020:
/// `⌈915 / 57.6⌉ = 16`, not `⌈915 / 57⌉ = 17`), so the exact capacity is
/// carried alongside in permille and used by [`lower_bound`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceConstraints {
    /// Maximum block size in technology cells (`⌊S_ds · δ⌋`).
    pub s_max: u64,
    /// Maximum terminals per block.
    pub t_max: usize,
    /// Exact size capacity `S_ds · δ` in permille of a cell.
    s_max_permille: u64,
}

impl DeviceConstraints {
    /// Creates constraints directly from a size and terminal budget. The
    /// exact capacity equals `s_max` (no fractional part; saturating for
    /// enormous sentinel capacities).
    #[must_use]
    pub fn new(s_max: u64, t_max: usize) -> Self {
        DeviceConstraints { s_max, t_max, s_max_permille: s_max.saturating_mul(1000) }
    }

    /// Returns the exact (pre-floor) size capacity `S_ds · δ`.
    #[must_use]
    pub fn s_max_exact(&self) -> f64 {
        self.s_max_permille as f64 / 1000.0
    }

    /// Returns `true` when a block with the given occupancy meets both
    /// constraints (`P_j ⊨ D_i` in the paper's notation).
    #[inline]
    #[must_use]
    pub fn fits(&self, size: u64, terminals: usize) -> bool {
        size <= self.s_max && terminals <= self.t_max
    }

    /// Returns `true` when the occupancy satisfies the size constraint.
    #[inline]
    #[must_use]
    pub fn fits_size(&self, size: u64) -> bool {
        size <= self.s_max
    }

    /// Returns `true` when the occupancy satisfies the terminal constraint.
    #[inline]
    #[must_use]
    pub fn fits_terminals(&self, terminals: usize) -> bool {
        terminals <= self.t_max
    }

    /// Free-space estimate of a block (paper §3.1):
    /// `F = σ₁·(S_MAX − S)/S_MAX + σ₂·(T_MAX − T)/T_MAX`.
    ///
    /// Over-full blocks yield negative contributions, which is the desired
    /// ordering (they have the *least* free space).
    #[must_use]
    pub fn free_space(&self, usage: BlockUsage, sigma1: f64, sigma2: f64) -> f64 {
        let s_term = if self.s_max == 0 {
            0.0
        } else {
            (self.s_max as f64 - usage.size as f64) / self.s_max as f64
        };
        let t_term = if self.t_max == 0 {
            0.0
        } else {
            (self.t_max as f64 - usage.terminals as f64) / self.t_max as f64
        };
        sigma1 * s_term + sigma2 * t_term
    }
}

impl fmt::Display for DeviceConstraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S_MAX={}, T_MAX={}", self.s_max, self.t_max)
    }
}

/// A block's occupancy: its position in the paper's (T, S) feasibility
/// plane (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BlockUsage {
    /// Occupied size in technology cells.
    pub size: u64,
    /// Occupied terminals (IOBs).
    pub terminals: usize,
}

impl BlockUsage {
    /// Creates an occupancy point.
    #[must_use]
    pub fn new(size: u64, terminals: usize) -> Self {
        BlockUsage { size, terminals }
    }
}

/// Theoretical lower bound on the number of devices:
/// `M = MAX(⌈S₀ / S_MAX⌉, ⌈|Y₀| / T_MAX⌉)` (paper §2).
///
/// Returns at least 1 for a non-empty circuit and 0 for an empty one.
///
/// # Panics
///
/// Panics if `constraints.s_max == 0` or `constraints.t_max == 0` while the
/// corresponding resource demand is non-zero (the circuit can never fit).
#[must_use]
pub fn lower_bound(graph: &Hypergraph, constraints: DeviceConstraints) -> usize {
    let size = graph.total_size();
    let terms = graph.terminal_count();
    if size == 0 && terms == 0 {
        return 0;
    }
    assert!(constraints.s_max > 0 || size == 0, "device has zero logic capacity");
    assert!(constraints.t_max > 0 || terms == 0, "device has zero terminal capacity");
    let m_size = if size == 0 {
        0
    } else {
        // ⌈S₀ / (S_ds·δ)⌉ with the capacity expressed exactly in permille.
        (size * 1000).div_ceil(constraints.s_max_permille) as usize
    };
    let m_io = if terms == 0 { 0 } else { terms.div_ceil(constraints.t_max) };
    m_size.max(m_io).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpart_hypergraph::gen::{mcnc_profiles, synthesize_mcnc, Technology};
    use fpart_hypergraph::HypergraphBuilder;

    #[test]
    fn paper_constraint_values() {
        let checks = [
            (Device::XC3020.constraints(0.9), 57, 64, 57.6),
            (Device::XC3042.constraints(0.9), 129, 96, 129.6),
            (Device::XC3090.constraints(0.9), 288, 144, 288.0),
            (Device::XC2064.constraints(1.0), 64, 58, 64.0),
        ];
        for (c, s, t, exact) in checks {
            assert_eq!(c.s_max, s);
            assert_eq!(c.t_max, t);
            assert!((c.s_max_exact() - exact).abs() < 1e-9);
        }
    }

    #[test]
    fn fits_is_conjunction() {
        let c = DeviceConstraints::new(10, 5);
        assert!(c.fits(10, 5));
        assert!(!c.fits(11, 5));
        assert!(!c.fits(10, 6));
        assert!(c.fits_size(10) && !c.fits_size(11));
        assert!(c.fits_terminals(5) && !c.fits_terminals(6));
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(Device::by_name("XC3042"), Some(Device::XC3042));
        assert_eq!(Device::by_name("XC9999"), None);
    }

    #[test]
    #[should_panic(expected = "filling ratio")]
    fn delta_out_of_range_panics() {
        let _ = Device::XC3020.constraints(1.5);
    }

    #[test]
    fn free_space_ordering() {
        let c = DeviceConstraints::new(100, 50);
        let empty = c.free_space(BlockUsage::new(0, 0), 0.5, 0.5);
        let half = c.free_space(BlockUsage::new(50, 25), 0.5, 0.5);
        let full = c.free_space(BlockUsage::new(100, 50), 0.5, 0.5);
        let over = c.free_space(BlockUsage::new(120, 60), 0.5, 0.5);
        assert!(empty > half && half > full && full > over);
        assert!((empty - 1.0).abs() < 1e-12);
        assert!(full.abs() < 1e-12);
    }

    /// The M column of Tables 2–5 must be reproduced exactly for every
    /// circuit × device combination the paper reports.
    #[test]
    fn lower_bounds_match_paper_tables() {
        let xc3020 = Device::XC3020.constraints(0.9);
        let xc3042 = Device::XC3042.constraints(0.9);
        let xc3090 = Device::XC3090.constraints(0.9);
        let xc2064 = Device::XC2064.constraints(1.0);

        let expect_3020 = [5, 7, 15, 9, 7, 8, 16, 15, 39, 51];
        let expect_3042 = [3, 4, 7, 4, 3, 4, 8, 7, 18, 23];
        let expect_3090 = [1, 3, 3, 3, 2, 2, 4, 3, 8, 11];
        // Table 5 covers only the four combinational circuits.
        let expect_2064 = [("c3540", 6), ("c5315", 9), ("c7552", 10), ("c6288", 14)];

        for (i, p) in mcnc_profiles().iter().enumerate() {
            let g3000 = synthesize_mcnc(p, Technology::Xc3000);
            assert_eq!(lower_bound(&g3000, xc3020), expect_3020[i], "{} XC3020", p.name);
            assert_eq!(lower_bound(&g3000, xc3042), expect_3042[i], "{} XC3042", p.name);
            assert_eq!(lower_bound(&g3000, xc3090), expect_3090[i], "{} XC3090", p.name);
        }
        for (name, m) in expect_2064 {
            let p = fpart_hypergraph::gen::find_profile(name).unwrap();
            let g2000 = synthesize_mcnc(p, Technology::Xc2000);
            assert_eq!(lower_bound(&g2000, xc2064), m, "{name} XC2064");
        }
    }

    #[test]
    fn lower_bound_io_critical_circuit() {
        // 10 cells but 130 terminals on a 57/64 device → IO bound dominates.
        let mut b = HypergraphBuilder::new();
        let nodes: Vec<_> = (0..10).map(|i| b.add_node(format!("n{i}"), 1)).collect();
        let mut nets = Vec::new();
        for (i, w) in nodes.windows(2).enumerate() {
            nets.push(b.add_net(format!("e{i}"), [w[0], w[1]]).unwrap());
        }
        for t in 0..130 {
            b.add_terminal(format!("t{t}"), nets[t % nets.len()]).unwrap();
        }
        let g = b.finish().unwrap();
        let c = Device::XC3020.constraints(0.9);
        assert_eq!(lower_bound(&g, c), 3); // ceil(130/64)
    }

    #[test]
    fn lower_bound_empty_graph_is_zero() {
        let g = HypergraphBuilder::new().finish().unwrap();
        assert_eq!(lower_bound(&g, DeviceConstraints::new(10, 10)), 0);
    }

    #[test]
    fn family_detection() {
        assert!(Device::XC2064.is_xc2000_family());
        assert!(!Device::XC3020.is_xc2000_family());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Device::XC3020.to_string(), "XC3020 (64 CLB, 64 IOB)");
        assert_eq!(DeviceConstraints::new(57, 64).to_string(), "S_MAX=57, T_MAX=64");
    }

    #[test]
    fn catalog_contains_paper_devices() {
        let cat = Device::catalog();
        for d in Device::paper_catalog() {
            assert!(cat.contains(&d));
        }
    }
}
