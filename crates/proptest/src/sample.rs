//! Sampling strategies (`proptest::sample::select`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy choosing uniformly among the given values.
///
/// # Panics
///
/// Panics (at generation time) if `options` is empty.
#[must_use]
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select over no options");
        self.options[rng.bounded_u64(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = select(vec!["a", "b", "c"]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match s.generate(&mut rng) {
                "a" => seen[0] = true,
                "b" => seen[1] = true,
                _ => seen[2] = true,
            }
        }
        assert!(seen.iter().all(|&x| x));
    }
}
