//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Length specification accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for vectors of values drawn from `element`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.bounded_u64(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_stay_in_range() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = vec(0usize..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_length() {
        let mut rng = TestRng::seed_from_u64(5);
        assert_eq!(vec(0u32..5, 3).generate(&mut rng).len(), 3);
    }
}
