//! Deterministic case runner and error types.

use crate::rng::TestRng;

/// How a single generated case can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was skipped (a `prop_assume!` did not hold); the runner
    /// draws a replacement case.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing-case error with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected-case (skip) error with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// Runner configuration; mirrors the proptest struct of the same name.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, max_global_rejects: cases.saturating_mul(64).max(1024) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(64)
    }
}

/// Drives one property test: counts successful cases, tolerates a
/// bounded number of rejects, and panics on the first failure (no
/// shrinking).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
    passed: u32,
    rejected: u32,
}

impl TestRunner {
    /// Creates a runner for the named test, deterministically seeded
    /// from the name.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let rng = TestRng::from_name(name);
        TestRunner { config, name, rng, passed: 0, rejected: 0 }
    }

    /// Whether another case should run.
    #[must_use]
    pub fn more_cases(&self) -> bool {
        self.passed < self.config.cases
    }

    /// The generation source for the next case.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Records a case outcome.
    ///
    /// # Panics
    ///
    /// Panics on `Fail` (test failure) and when the reject budget is
    /// exhausted.
    pub fn record(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject(_)) => {
                self.rejected += 1;
                assert!(
                    self.rejected <= self.config.max_global_rejects,
                    "{}: too many rejected cases ({} rejects for {} passes)",
                    self.name,
                    self.rejected,
                    self.passed,
                );
            }
            Err(TestCaseError::Fail(reason)) => {
                panic!(
                    "{}: property failed after {} passing case(s): {}",
                    self.name, self.passed, reason
                );
            }
        }
    }
}
