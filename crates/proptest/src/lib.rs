//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no crates.io access, so this crate
//! implements — API-compatibly — exactly the subset of proptest the
//! tests use: the [`proptest!`] macro, `prop_assert*` macros,
//! [`prelude::any`], range/tuple/collection/sample strategies,
//! [`strategy::Strategy::prop_map`], and a deterministic runner.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports its assertion message but
//!   does not get minimized;
//! * generation is seeded from the test name, so every run of a given
//!   test sees the same deterministic case sequence;
//! * string strategies ignore the regex pattern's character classes and
//!   produce arbitrary unicode text whose length honours a trailing
//!   `{lo,hi}` repetition bound if present.

pub mod collection;
pub mod prelude;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// Mirrors proptest's surface: an optional
/// `#![proptest_config(expr)]` header, then `fn name(pat in strategy,
/// ...) { body }` items. Each becomes a `#[test]` (the attribute comes
/// from the re-emitted metas, exactly as in real proptest) running
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items $config; $($rest)*);
    };
    (@items $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                while runner.more_cases() {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        $(let $parm = $crate::strategy::Strategy::generate(
                            &($strategy),
                            runner.rng(),
                        );)+
                        (|| { $body ::std::result::Result::Ok(()) })()
                    };
                    runner.record(outcome);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Fails the current case (returns `Err(TestCaseError::Fail)`) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left,
            right,
            stringify!($left),
            stringify!($right),
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right),
        );
    }};
}

/// Rejects (skips) the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
