//! Deterministic generator used by the test runner (xoshiro256**, seeded
//! via SplitMix64 from the test name).

/// Deterministic random source for strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator seeded from `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Creates a generator seeded from a test name (FNV-1a hash).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let hi = ((u128::from(x) * u128::from(bound)) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
