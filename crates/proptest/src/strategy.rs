//! Value-generation strategies: ranges, tuples, `any`, `Just`, string
//! patterns, and `prop_map`.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a
/// concrete value directly, and failures are not shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates `self` but discards values failing `f`, retrying.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded retry: a filter that rejects everything is a test bug;
        // fail loudly rather than spinning.
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive values");
    }
}

/// Strategy producing exactly one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`any::<T>()`).
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// Unconstrained values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let m = rng.gen_f64() * 2.0 - 1.0;
        let e = (rng.bounded_u64(61) as i32) - 30;
        m * 2f64.powi(e)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.bounded_u64(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.bounded_u64(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String-pattern strategy: `"..." ` literals act as strategies, as in
/// proptest's regex support.
///
/// Only the trailing `{lo,hi}` repetition bound is honoured (it sets
/// the length range); the character class itself is approximated by a
/// mix of ASCII, general unicode, and occasional control characters —
/// good enough for the parser-fuzz tests this workspace uses it for.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 64));
        let len = lo + rng.bounded_u64((hi - lo + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.bounded_u64(10) {
                0..=5 => {
                    // Printable ASCII.
                    char::from(32 + rng.bounded_u64(95) as u8)
                }
                6 | 7 => {
                    // Whitespace and structure the parsers care about.
                    *[' ', '\t', '\n', '#', '.', '-', '_']
                        .get(rng.bounded_u64(7) as usize)
                        .unwrap_or(&' ')
                }
                8 => {
                    // Arbitrary unicode scalar (skip surrogates).
                    char::from_u32(rng.bounded_u64(0x11_0000) as u32).unwrap_or('\u{fffd}')
                }
                _ => {
                    // Control characters.
                    char::from(rng.bounded_u64(32) as u8)
                }
            };
            out.push(c);
        }
        out
    }
}

/// Extracts the `{lo,hi}` suffix of a pattern like `"\\PC*{0,400}"`.
fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || close <= open {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(7)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&a));
            let b = (-8i32..=8).generate(&mut r);
            assert!((-8..=8).contains(&b));
            let c = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut r = rng();
        let s = (1usize..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn string_pattern_honours_length_bound() {
        let mut r = rng();
        for _ in 0..50 {
            let s = "\\PC*{0,40}".generate(&mut r);
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn tuples_compose() {
        let mut r = rng();
        let (a, b, c) = (0usize..4, any::<u64>(), 0.0f64..1.0).generate(&mut r);
        assert!(a < 4);
        let _ = b;
        assert!((0.0..1.0).contains(&c));
    }
}
