//! Reproduce one paper data point end-to-end: synthesize the s13207
//! workload, run FPART and both re-implemented baselines on XC3020, and
//! compare with the published Table 2 row.
//!
//! ```sh
//! cargo run --release -p fpart-core --example mcnc_flow
//! ```

use fpart_baselines::{fbb_mw_partition, kway_partition, FlowConfig};
use fpart_core::{partition, FpartConfig};
use fpart_device::{lower_bound, Device};
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = find_profile("s13207").expect("s13207 is a Table 1 circuit");
    let circuit = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);
    let m = lower_bound(&circuit, constraints);

    println!(
        "s13207: {} CLBs, {} IOBs, lower bound M = {m}",
        circuit.node_count(),
        circuit.terminal_count()
    );
    println!("published (Table 2): k-way.x 23, PROP 19, FBB-MW 18, FPART 18\n");

    let fpart = partition(&circuit, constraints, &FpartConfig::default())?;
    println!(
        "FPART : {} devices (feasible {}, cut {}, {:.2?})",
        fpart.device_count, fpart.feasible, fpart.cut, fpart.elapsed
    );

    let kway = kway_partition(&circuit, constraints)?;
    println!(
        "kway  : {} devices (feasible {}, cut {})",
        kway.device_count, kway.feasible, kway.cut
    );

    let flow = fbb_mw_partition(&circuit, constraints, &FlowConfig::default())?;
    println!(
        "flow  : {} devices (feasible {}, cut {})",
        flow.device_count, flow.feasible, flow.cut
    );

    assert!(fpart.device_count <= kway.device_count);
    println!("\nFPART uses the fewest devices, as in the paper's Table 2.");
    Ok(())
}
