//! Advanced flow: multilevel partitioning, quality reporting,
//! replication post-pass, and heterogeneous device fitting — the
//! extension features layered on the paper's core algorithm.
//!
//! ```sh
//! cargo run --release -p fpart-baselines --example advanced_flow
//! ```

use fpart_baselines::replicate;
use fpart_core::{partition, partition_multilevel, FpartConfig, MultilevelConfig, QualityReport};
use fpart_device::fit::{default_price_list, fit_blocks};
use fpart_device::Device;
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = find_profile("s13207").expect("s13207 is a Table 1 circuit");
    let circuit = synthesize_mcnc(profile, Technology::Xc3000);
    let constraints = Device::XC3020.constraints(0.9);

    // 1. Flat FPART with a quality report.
    let flat = partition(&circuit, constraints, &FpartConfig::default())?;
    println!("flat FPART ({:.2?}):", flat.elapsed);
    println!("{}\n", QualityReport::new(&flat, constraints));

    // 2. Multilevel: coarsen, partition, refine — faster, close quality.
    let start = std::time::Instant::now();
    let ml = partition_multilevel(
        &circuit,
        constraints,
        &FpartConfig::default(),
        &MultilevelConfig::default(),
    )?;
    println!("multilevel FPART ({:.2?}):", start.elapsed());
    println!("{}\n", QualityReport::new(&ml, constraints));

    // 3. Replication post-pass on the flat result: convert spare CLBs
    //    into IOB savings (the "r" of the paper's r+p.0 comparison).
    let rep = replicate(&circuit, &flat.assignment, flat.device_count, constraints);
    println!(
        "replication: {} copies applied, {} IOBs saved across {} blocks\n",
        rep.copies.len(),
        rep.terminals_saved(),
        flat.device_count
    );

    // 4. Heterogeneous fitting: each block buys the cheapest part it fits.
    let list = default_price_list();
    if let Some(fit) = fit_blocks(&flat.usages(), 0.9, &list) {
        let homogeneous = list.iter().find(|p| p.device == Device::XC3020).expect("catalog").price
            * flat.device_count as f64;
        println!(
            "device fitting: {:.1} cost units heterogeneous vs {homogeneous:.1} homogeneous ({} device types)",
            fit.total_price,
            fit.distinct_devices()
        );
    }
    Ok(())
}
