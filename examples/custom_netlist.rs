//! Partition a netlist from the `.fhg` text format: parse, partition,
//! and write the per-device sub-netlists back out.
//!
//! ```sh
//! cargo run --release -p fpart-core --example custom_netlist
//! ```
//!
//! In a real flow the input would come from a file
//! (`fpart_hypergraph::io::read_netlist` accepts any `Read`); here the
//! netlist is embedded so the example is self-contained.

use fpart_core::{partition, FpartConfig};
use fpart_device::DeviceConstraints;
use fpart_hypergraph::io::{netlist_to_string, parse_netlist};
use fpart_hypergraph::subgraph::{subgraph, BoundaryHandling};

const NETLIST: &str = "\
circuit crossbar4
node sw00 3
node sw01 3
node sw10 3
node sw11 3
node buf0 1
node buf1 1
net row0 sw00 sw01 buf0
net row1 sw10 sw11 buf1
net col0 sw00 sw10
net col1 sw01 sw11
terminal in0 row0
terminal in1 row1
terminal out0 col0
terminal out1 col1
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = parse_netlist(NETLIST)?;
    println!(
        "parsed `{}`: {} nodes, {} nets, {} terminals",
        circuit.name(),
        circuit.node_count(),
        circuit.net_count(),
        circuit.terminal_count()
    );

    // A deliberately tiny device so the crossbar must split.
    let constraints = DeviceConstraints::new(8, 6);
    let outcome = partition(&circuit, constraints, &FpartConfig::default())?;
    println!(
        "partitioned onto {} devices (feasible: {})\n",
        outcome.device_count, outcome.feasible
    );

    // Emit one sub-netlist per device; cut nets get boundary terminals
    // (`cut_<net>`), so each file's terminals are exactly the IOBs that
    // device consumes.
    for block in 0..outcome.device_count {
        let members: Vec<_> = circuit
            .node_ids()
            .filter(|v| outcome.assignment[v.index()] as usize == block)
            .collect();
        let sub = subgraph(&circuit, &members, BoundaryHandling::MarkTerminals);
        println!("--- device {block} ---");
        print!("{}", netlist_to_string(&sub.graph));
    }
    Ok(())
}
