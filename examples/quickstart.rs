//! Quickstart: build a small circuit, partition it onto XC3020 devices,
//! and inspect the result.
//!
//! ```sh
//! cargo run --release -p fpart-core --example quickstart
//! ```

use fpart_core::{partition, FpartConfig, PartitionError};
use fpart_device::Device;
use fpart_hypergraph::HypergraphBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy circuit: two 8-cell ripple-carry chains sharing a few control
    // signals, plus primary I/O pads.
    let mut builder = HypergraphBuilder::named("quickstart");
    let mut cells = Vec::new();
    for chain in 0..2 {
        for bit in 0..8 {
            cells.push(builder.add_node(format!("add{chain}_{bit}"), 4));
        }
    }
    // Carry chains.
    for chain in 0..2 {
        for bit in 0..7 {
            let a = cells[chain * 8 + bit];
            let b = cells[chain * 8 + bit + 1];
            builder.add_net(format!("carry{chain}_{bit}"), [a, b])?;
        }
    }
    // Shared control net spanning both chains.
    let control = builder.add_net("enable", [cells[0], cells[3], cells[8], cells[11]])?;
    builder.add_terminal("pad_enable", control)?;
    // Result pads on the last bit of each chain.
    for chain in 0..2 {
        let out = builder.add_net(format!("sum{chain}"), [cells[chain * 8 + 7]])?;
        builder.add_terminal(format!("pad_sum{chain}"), out)?;
    }
    let circuit = builder.finish()?;

    // Partition onto XC3020 parts with the paper's 0.9 filling ratio.
    let device = Device::XC3020;
    let constraints = device.constraints(0.9);
    let outcome = match partition(&circuit, constraints, &FpartConfig::default()) {
        Ok(outcome) => outcome,
        Err(e @ PartitionError::OversizedNode { .. }) => {
            eprintln!("this circuit cannot fit the device: {e}");
            return Err(e.into());
        }
        Err(e) => return Err(e.into()),
    };

    println!(
        "{} cells / {} nets -> {} x {} (lower bound {}, feasible: {})",
        circuit.node_count(),
        circuit.net_count(),
        outcome.device_count,
        device,
        outcome.lower_bound,
        outcome.feasible,
    );
    for (i, block) in outcome.blocks.iter().enumerate() {
        println!(
            "  device {i}: {} cells used of {}, {} IOBs of {}",
            block.size, constraints.s_max, block.terminals, constraints.t_max
        );
    }
    println!("  nets crossing devices: {}", outcome.cut);
    Ok(())
}
