//! Sweep one circuit across the whole device catalog and filling ratios —
//! the "which part should I buy?" workflow the paper's tooling served.
//!
//! ```sh
//! cargo run --release -p fpart-core --example device_sweep
//! ```

use fpart_core::{partition, FpartConfig};
use fpart_device::{lower_bound, Device};
use fpart_hypergraph::gen::{find_profile, synthesize_mcnc, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = find_profile("s9234").expect("known circuit");
    let circuit = synthesize_mcnc(profile, Technology::Xc3000);
    println!(
        "s9234 on the XC3000 catalog ({} CLBs, {} IOBs)\n",
        circuit.node_count(),
        circuit.terminal_count()
    );
    println!(
        "{:>8} {:>6} {:>8} {:>3} {:>7} {:>9} {:>9}",
        "device", "delta", "devices", "M", "cut", "fill %", "time"
    );

    for device in Device::catalog() {
        if device.is_xc2000_family() {
            continue; // the s-circuits were only mapped to XC3000
        }
        for delta in [0.8, 0.9, 1.0] {
            let constraints = device.constraints(delta);
            if u64::from(circuit.node_ids().map(|v| circuit.node_size(v)).max().unwrap_or(1))
                > constraints.s_max
            {
                continue;
            }
            let m = lower_bound(&circuit, constraints);
            let start = std::time::Instant::now();
            let outcome = partition(&circuit, constraints, &FpartConfig::default())?;
            let fill = circuit.total_size() as f64
                / (outcome.device_count as f64 * constraints.s_max as f64)
                * 100.0;
            println!(
                "{:>8} {:>6.2} {:>7}{} {:>3} {:>7} {:>8.1}% {:>8.2?}",
                device.name,
                delta,
                outcome.device_count,
                if outcome.feasible { " " } else { "!" },
                m,
                outcome.cut,
                fill,
                start.elapsed()
            );
        }
    }
    println!("\nlarger parts and looser filling ratios need fewer devices, at lower fill");
    Ok(())
}
